// Package baselines implements the heuristic comparators the paper
// evaluates against (Section VII): HighDegreeGlobal, HighDegreeLocal,
// PageRank and MoreSeeds. None of them carries an approximation
// guarantee for the k-boosting problem; they exist to show how much
// PRR-Boost gains over intuitive node-importance heuristics.
package baselines

import (
	"fmt"
	"sort"

	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/rrset"
)

// DegreeKind enumerates the four weighted-degree definitions of the
// HighDegree baselines.
type DegreeKind int

const (
	// OutSum: sum of influence probabilities on outgoing edges.
	OutSum DegreeKind = iota
	// OutSumDiscounted: same, but edges into already-chosen nodes are
	// ignored.
	OutSumDiscounted
	// InBoostGain: sum of p'-p over incoming edges (how much boosting
	// this node raises its own susceptibility).
	InBoostGain
	// InBoostGainDiscounted: same, but edges from already-chosen nodes
	// are ignored.
	InBoostGainDiscounted

	numDegreeKinds
)

func (k DegreeKind) String() string {
	switch k {
	case OutSum:
		return "out-sum"
	case OutSumDiscounted:
		return "out-sum-discounted"
	case InBoostGain:
		return "in-boost-gain"
	case InBoostGainDiscounted:
		return "in-boost-gain-discounted"
	default:
		return fmt.Sprintf("DegreeKind(%d)", int(k))
	}
}

// weightedDegree computes the current weighted degree of u under kind,
// given the chosen-so-far mask (for the discounted variants).
func weightedDegree(g *graph.Graph, u int32, kind DegreeKind, chosen []bool) float64 {
	var w float64
	switch kind {
	case OutSum:
		for _, p := range g.OutP(u) {
			w += p
		}
	case OutSumDiscounted:
		to := g.OutTo(u)
		p := g.OutP(u)
		for i, v := range to {
			if !chosen[v] {
				w += p[i]
			}
		}
	case InBoostGain:
		p := g.InP(u)
		pb := g.InPBoost(u)
		for i := range p {
			w += pb[i] - p[i]
		}
	case InBoostGainDiscounted:
		from := g.InFrom(u)
		p := g.InP(u)
		pb := g.InPBoost(u)
		for i, v := range from {
			if !chosen[v] {
				w += pb[i] - p[i]
			}
		}
	}
	return w
}

// HighDegreeGlobal returns one candidate boost set per DegreeKind:
// starting from an empty set, it repeatedly adds the non-seed node with
// the highest weighted degree. The experiment evaluates all four and
// reports the best, as the paper does.
func HighDegreeGlobal(g *graph.Graph, seeds []int32, k int) [][]int32 {
	eligible := eligibleMask(g, seeds)
	out := make([][]int32, 0, numDegreeKinds)
	for kind := DegreeKind(0); kind < numDegreeKinds; kind++ {
		out = append(out, selectByDegree(g, eligible, nil, k, kind))
	}
	return out
}

// HighDegreeLocal is HighDegreeGlobal restricted to nodes close to the
// seeds: first the out-neighbors of seeds, then nodes two hops away, and
// so on until k candidates exist (Section VII "HighDegreeLocal").
func HighDegreeLocal(g *graph.Graph, seeds []int32, k int) [][]int32 {
	eligible := eligibleMask(g, seeds)
	// Grow rings outward from the seeds until at least k eligible nodes
	// are in scope (or the reachable set is exhausted).
	inScope := make([]bool, g.N())
	frontier := append([]int32(nil), seeds...)
	visited := make([]bool, g.N())
	for _, s := range seeds {
		visited[s] = true
	}
	count := 0
	for count < k && len(frontier) > 0 {
		var next []int32
		for _, u := range frontier {
			for _, v := range g.OutTo(u) {
				if !visited[v] {
					visited[v] = true
					next = append(next, v)
					if eligible[v] {
						inScope[v] = true
						count++
					}
				}
			}
		}
		frontier = next
	}
	scope := inScope
	if count < k {
		// Not enough nodes near seeds: fall back to all eligible nodes.
		scope = eligible
	} else {
		// Restrict eligibility to the local scope.
		scope = make([]bool, g.N())
		for v := range scope {
			scope[v] = inScope[v] && eligible[v]
		}
	}
	out := make([][]int32, 0, numDegreeKinds)
	for kind := DegreeKind(0); kind < numDegreeKinds; kind++ {
		out = append(out, selectByDegree(g, scope, eligible, k, kind))
	}
	return out
}

// selectByDegree greedily picks k nodes from scope by weighted degree;
// if scope runs out it continues from fallback (may be nil).
func selectByDegree(g *graph.Graph, scope, fallback []bool, k int, kind DegreeKind) []int32 {
	chosen := make([]bool, g.N())
	var picks []int32
	discounted := kind == OutSumDiscounted || kind == InBoostGainDiscounted

	pickFrom := func(mask []bool) {
		if mask == nil {
			return
		}
		// For non-discounted kinds the degree never changes: one sort
		// suffices. For discounted kinds re-evaluate each round.
		if !discounted {
			type nw struct {
				v int32
				w float64
			}
			var all []nw
			for v := int32(0); int(v) < g.N(); v++ {
				if mask[v] && !chosen[v] {
					all = append(all, nw{v, weightedDegree(g, v, kind, chosen)})
				}
			}
			sort.Slice(all, func(i, j int) bool {
				if all[i].w != all[j].w {
					return all[i].w > all[j].w
				}
				return all[i].v < all[j].v
			})
			for _, c := range all {
				if len(picks) >= k {
					return
				}
				picks = append(picks, c.v)
				chosen[c.v] = true
			}
			return
		}
		for len(picks) < k {
			best := int32(-1)
			bestW := -1.0
			for v := int32(0); int(v) < g.N(); v++ {
				if !mask[v] || chosen[v] {
					continue
				}
				w := weightedDegree(g, v, kind, chosen)
				if w > bestW {
					best, bestW = v, w
				}
			}
			if best < 0 {
				return
			}
			picks = append(picks, best)
			chosen[best] = true
		}
	}
	pickFrom(scope)
	if len(picks) < k {
		pickFrom(fallback)
	}
	return picks
}

func eligibleMask(g *graph.Graph, seeds []int32) []bool {
	eligible := make([]bool, g.N())
	for v := range eligible {
		eligible[v] = true
	}
	for _, s := range seeds {
		eligible[s] = false
	}
	return eligible
}

// PageRankOptions configures the PageRank baseline.
type PageRankOptions struct {
	Restart float64 // restart (teleport) probability; the paper uses 0.15
	Tol     float64 // L1 convergence threshold; the paper uses 1e-4
	MaxIter int     // iteration cap
}

func (o PageRankOptions) withDefaults() PageRankOptions {
	if o.Restart <= 0 || o.Restart >= 1 {
		o.Restart = 0.15
	}
	if o.Tol <= 0 {
		o.Tol = 1e-4
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 1000
	}
	return o
}

// PageRank computes the influence-PageRank of the paper: when u has
// influence on v (edge e_uv with probability p_uv), v "votes" for u.
// The walk moves from u to its in-neighbor v with transition probability
// p_vu / ρ(u), where ρ(u) is the total incoming influence probability of
// u. Dangling mass (ρ(u)=0) teleports uniformly.
func PageRank(g *graph.Graph, opt PageRankOptions) []float64 {
	opt = opt.withDefaults()
	n := g.N()
	pr := make([]float64, n)
	next := make([]float64, n)
	for v := range pr {
		pr[v] = 1 / float64(n)
	}
	rho := make([]float64, n)
	for v := int32(0); int(v) < n; v++ {
		for _, p := range g.InP(v) {
			rho[v] += p
		}
	}
	for iter := 0; iter < opt.MaxIter; iter++ {
		base := opt.Restart / float64(n)
		var dangling float64
		for v := range next {
			next[v] = base
		}
		for u := int32(0); int(u) < n; u++ {
			if rho[u] == 0 {
				dangling += pr[u]
				continue
			}
			share := (1 - opt.Restart) * pr[u] / rho[u]
			from := g.InFrom(u)
			p := g.InP(u)
			for i, v := range from {
				next[v] += share * p[i]
			}
		}
		if dangling > 0 {
			spread := (1 - opt.Restart) * dangling / float64(n)
			for v := range next {
				next[v] += spread
			}
		}
		var l1 float64
		for v := range pr {
			d := next[v] - pr[v]
			if d < 0 {
				d = -d
			}
			l1 += d
		}
		pr, next = next, pr
		if l1 < opt.Tol {
			break
		}
	}
	return pr
}

// PageRankBoost returns the top-k non-seed nodes by influence-PageRank.
func PageRankBoost(g *graph.Graph, seeds []int32, k int, opt PageRankOptions) []int32 {
	pr := PageRank(g, opt)
	banned := make([]bool, g.N())
	for _, s := range seeds {
		banned[s] = true
	}
	type nw struct {
		v int32
		w float64
	}
	all := make([]nw, 0, g.N())
	for v := int32(0); int(v) < g.N(); v++ {
		if !banned[v] {
			all = append(all, nw{v, pr[v]})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].w != all[j].w {
			return all[i].w > all[j].w
		}
		return all[i].v < all[j].v
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]int32, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].v
	}
	return out
}

// MoreSeeds selects k extra seeds maximizing marginal influence (the
// IMM framework re-targeted at marginal coverage) and returns them as a
// boost set. The paper uses it to demonstrate that good additional
// seeds are poor boost targets.
func MoreSeeds(g *graph.Graph, seeds []int32, k int, opt rrset.Options) ([]int32, error) {
	res, err := rrset.SelectMarginalSeeds(g, seeds, k, opt)
	if err != nil {
		return nil, err
	}
	return res.Seeds, nil
}
