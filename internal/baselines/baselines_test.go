package baselines

import (
	"math"
	"testing"

	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/rng"
	"github.com/kboost/kboost/internal/rrset"
	"github.com/kboost/kboost/internal/testutil"
)

func starGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for leaf := int32(1); int(leaf) < n; leaf++ {
		b.MustAddEdge(0, leaf, 0.5, 0.8)
	}
	return b.MustBuild()
}

func TestHighDegreeGlobalShapes(t *testing.T) {
	r := rng.New(1)
	g := testutil.RandomGraph(r, 30, 90, 0.4)
	seeds := []int32{0, 1}
	sets := HighDegreeGlobal(g, seeds, 5)
	if len(sets) != 4 {
		t.Fatalf("%d variants, want 4", len(sets))
	}
	for kind, set := range sets {
		if len(set) != 5 {
			t.Fatalf("variant %d returned %d nodes", kind, len(set))
		}
		seen := map[int32]bool{}
		for _, v := range set {
			if v == 0 || v == 1 {
				t.Fatalf("variant %d picked a seed", kind)
			}
			if seen[v] {
				t.Fatalf("variant %d picked %d twice", kind, v)
			}
			seen[v] = true
		}
	}
}

func TestHighDegreeGlobalPicksHub(t *testing.T) {
	// Star with a non-seed hub: the out-sum variant must pick the hub
	// first.
	g := starGraph(10)
	sets := HighDegreeGlobal(g, []int32{9}, 1)
	if sets[OutSum][0] != 0 {
		t.Fatalf("OutSum picked %v, want hub 0", sets[OutSum])
	}
}

func TestHighDegreeLocalPrefersSeedNeighbors(t *testing.T) {
	// Two stars; seeds at star A's hub. Local must pick among A's
	// leaves even though B's hub has the highest degree.
	b := graph.NewBuilder(12)
	for leaf := int32(1); leaf <= 5; leaf++ {
		b.MustAddEdge(0, leaf, 0.5, 0.8)
	}
	for leaf := int32(7); leaf < 12; leaf++ {
		b.MustAddEdge(6, leaf, 0.9, 0.99)
	}
	g := b.MustBuild()
	sets := HighDegreeLocal(g, []int32{0}, 3)
	for kind, set := range sets {
		if len(set) != 3 {
			t.Fatalf("variant %d returned %d nodes", kind, len(set))
		}
		for _, v := range set {
			if v < 1 || v > 5 {
				t.Fatalf("variant %d picked %d outside seed neighborhood", kind, v)
			}
		}
	}
}

func TestHighDegreeLocalFallsBack(t *testing.T) {
	// Seeds with only 2 reachable nodes but k=4: must fall back to
	// global eligibility.
	b := graph.NewBuilder(8)
	b.MustAddEdge(0, 1, 0.5, 0.8)
	b.MustAddEdge(1, 2, 0.5, 0.8)
	b.MustAddEdge(4, 5, 0.5, 0.8)
	b.MustAddEdge(5, 6, 0.5, 0.8)
	g := b.MustBuild()
	sets := HighDegreeLocal(g, []int32{0}, 4)
	for kind, set := range sets {
		if len(set) != 4 {
			t.Fatalf("variant %d returned %d nodes, want 4 (with fallback)", kind, len(set))
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	r := rng.New(2)
	g := testutil.RandomGraph(r, 40, 120, 0.4)
	pr := PageRank(g, PageRankOptions{})
	var sum float64
	for _, v := range pr {
		if v < 0 {
			t.Fatalf("negative PageRank %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("PageRank sums to %v", sum)
	}
}

func TestPageRankInfluencerWins(t *testing.T) {
	// Hub influences many leaves: leaves vote for the hub, so the hub
	// must have the top PageRank.
	g := starGraph(20)
	pr := PageRank(g, PageRankOptions{})
	for v := 1; v < 20; v++ {
		if pr[0] <= pr[v] {
			t.Fatalf("hub rank %v not above leaf %d rank %v", pr[0], v, pr[v])
		}
	}
}

func TestPageRankBoostExcludesSeeds(t *testing.T) {
	g := starGraph(20)
	picks := PageRankBoost(g, []int32{0}, 3, PageRankOptions{})
	if len(picks) != 3 {
		t.Fatalf("%d picks", len(picks))
	}
	for _, v := range picks {
		if v == 0 {
			t.Fatal("seed picked")
		}
	}
}

func TestPageRankDanglingMass(t *testing.T) {
	// A graph where some nodes have no incoming influence (rho=0):
	// iteration must still converge and sum to 1.
	b := graph.NewBuilder(4)
	b.MustAddEdge(0, 1, 0.5, 0.8)
	b.MustAddEdge(2, 3, 0.5, 0.8)
	g := b.MustBuild()
	pr := PageRank(g, PageRankOptions{})
	var sum float64
	for _, v := range pr {
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("PageRank with dangling nodes sums to %v", sum)
	}
}

func TestMoreSeeds(t *testing.T) {
	r := rng.New(3)
	g := testutil.RandomGraph(r, 25, 60, 0.4)
	seeds := []int32{0, 1}
	picks, err := MoreSeeds(g, seeds, 3, rrset.Options{Seed: 4, MaxSamples: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if len(picks) != 3 {
		t.Fatalf("%d picks", len(picks))
	}
	for _, v := range picks {
		if v == 0 || v == 1 {
			t.Fatal("existing seed returned")
		}
	}
}

func TestDegreeKindString(t *testing.T) {
	names := map[DegreeKind]string{
		OutSum:                "out-sum",
		OutSumDiscounted:      "out-sum-discounted",
		InBoostGain:           "in-boost-gain",
		InBoostGainDiscounted: "in-boost-gain-discounted",
	}
	for kind, want := range names {
		if kind.String() != want {
			t.Fatalf("String(%d) = %q", kind, kind.String())
		}
	}
}
