package baselines

import (
	"testing"

	"github.com/kboost/kboost/internal/graph"
)

// The discounted out-sum variant must differ from the plain one when
// chosen nodes point at each other: after picking the hub, its
// satellite's discounted degree drops.
func TestDiscountedVariantDiffers(t *testing.T) {
	// hub 0 -> {2,3,4}; satellite 1 -> {0, 2} with strong edges into
	// already-chosen territory.
	b := graph.NewBuilder(6)
	b.MustAddEdge(0, 2, 0.9, 0.95)
	b.MustAddEdge(0, 3, 0.9, 0.95)
	b.MustAddEdge(0, 4, 0.9, 0.95)
	b.MustAddEdge(1, 0, 0.9, 0.95) // points at the hub (chosen first)
	b.MustAddEdge(1, 2, 0.9, 0.95)
	b.MustAddEdge(5, 3, 0.8, 0.9)
	b.MustAddEdge(5, 4, 0.8, 0.9)
	g := b.MustBuild()
	seeds := []int32{2} // keep 0,1,5 eligible

	sets := HighDegreeGlobal(g, seeds, 2)
	plain := sets[OutSum]
	discounted := sets[OutSumDiscounted]

	// Plain: 0 (2.7), then 1 (1.8). Discounted: 0 (2.7), then 1's
	// discounted degree is 0.9 (edge to 0 no longer counts, edge to
	// seed 2 still does)... while 5 keeps 1.6 -> discounted must pick 5.
	if plain[0] != 0 || plain[1] != 1 {
		t.Fatalf("plain picks %v, want [0 1]", plain)
	}
	if discounted[0] != 0 || discounted[1] != 5 {
		t.Fatalf("discounted picks %v, want [0 5]", discounted)
	}
}

// The in-boost-gain variants rank by p'-p, not by p.
func TestInBoostGainRanksByGain(t *testing.T) {
	b := graph.NewBuilder(3)
	b.MustAddEdge(0, 1, 0.9, 0.91) // strong but nearly unboostable
	b.MustAddEdge(0, 2, 0.1, 0.8)  // weak but very boostable
	g := b.MustBuild()
	sets := HighDegreeGlobal(g, []int32{0}, 1)
	if sets[InBoostGain][0] != 2 {
		t.Fatalf("InBoostGain picked %v, want [2]", sets[InBoostGain])
	}
	if sets[OutSum][0] != 1 && sets[OutSum][0] != 2 {
		t.Fatalf("OutSum picked %v", sets[OutSum])
	}
}
