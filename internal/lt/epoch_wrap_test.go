package lt

import (
	"math"
	"testing"

	"github.com/kboost/kboost/internal/rng"
	"github.com/kboost/kboost/internal/testutil"
)

// TestTouchEpochWrap forces the evalScratch touch stamp across its
// int32 wrap mid-pool and checks that frontier extraction (the stamp's
// dedup consumer) still yields the same pool state: a stale stamp
// surviving the wrap would drop frontier nodes and corrupt warm
// evaluation.
func TestTouchEpochWrap(t *testing.T) {
	r := rng.New(41)
	g := testutil.RandomGraph(r, 30, 120, 0.5)
	build := func(preWrap bool) *Pool {
		pool, err := NewPool(g, []int32{0, 1}, 7, 1)
		if err != nil {
			t.Fatal(err)
		}
		if preWrap {
			// Push the pooled scratch to the brink: the next bump lands on
			// MaxInt32 and the one after wraps while profiles still extend.
			s := pool.getScratch()
			s.tepoch = math.MaxInt32 - 1
			pool.putScratch(s)
		}
		pool.Extend(300)
		return pool
	}
	want := build(false)
	got := build(true)
	if want.BaseSpread() != got.BaseSpread() {
		t.Fatalf("BaseSpread diverged across wrap: %v vs %v", got.BaseSpread(), want.BaseSpread())
	}
	wantEst, err := want.EstimateSpread([]int32{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	gotEst, err := got.EstimateSpread([]int32{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if wantEst != gotEst {
		t.Fatalf("EstimateSpread diverged across wrap: %v vs %v", gotEst, wantEst)
	}
}
