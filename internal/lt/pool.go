package lt

// This file is the pooled Monte-Carlo evaluation subsystem for the
// boosted-LT model: the LT analogue of internal/prr's PRR-graph pools.
// A Pool holds R pre-sampled "threshold profiles" — possible worlds of
// the LT diffusion, each defined by a deterministic per-node threshold
// draw θ(i,v) — together with the cached fixed point of every profile
// under the empty boost set. Because LT activation with fixed
// thresholds is monotone in the edge weights, and boosting only raises
// weights, a boosted world's active set always contains the base
// world's; warm queries therefore evaluate boost sets *incrementally*
// from the cached base fixed point instead of re-running the cascade
// from scratch, and the pool can be grown in place and reused across
// queries exactly like a PRR pool.
//
// Thresholds are a pure hash of (profile seed, node id) rather than a
// lazily consumed RNG stream, so θ(i,v) does not depend on cascade
// order or on the boost set under evaluation — the property that makes
// profile reuse across boost sets well-defined (common random numbers)
// and makes every pool estimate bit-exact regardless of worker count.

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"github.com/kboost/kboost/internal/faults"
	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/panicsafe"
	"github.com/kboost/kboost/internal/rng"
)

// cancelStride is the amortized cooperative-cancellation poll interval
// inside shard simulation loops: one ctx check per 64 profiles keeps
// the per-profile overhead at an untaken branch while bounding
// cancellation latency to a handful of cascade simulations.
const cancelStride = 64

// Pool is a growable collection of boosted-LT threshold profiles for a
// fixed (graph, seed set). Profiles are independent of the boost budget
// k, so one pool serves every query against its seed set. Mutation
// (Extend) must be externally serialized against everything else;
// estimation and selection only read the pool and may run concurrently
// with each other.
type Pool struct {
	m        *Model
	g        *graph.Graph
	seeds    []int32 // sorted, deduplicated
	seedMask []bool
	workers  int
	root     *rng.Source

	// profileSeed[i] seeds the threshold hash of profile i. Seeds are
	// drawn serially from root, so pool contents are independent of the
	// worker count.
	profileSeed []uint64

	// Base-world state per profile, stored flat (CSR-style): the active
	// set at quiescence under B = ∅, and the frontier — touched but
	// inactive nodes — with their accumulated in-weight. Both node lists
	// are sorted per profile so membership tests are binary searches.
	// Offsets are int32 like prr's deltaIndex: 2^31 items would mean a
	// pool ≥ 8 GiB, far past the engine's byte budget (eviction kicks in
	// long before the offsets could wrap).
	activeStart []int32
	activeItems []int32
	frontStart  []int32
	frontItems  []int32
	frontW      []float64

	// baseSum is Σ_i |active_i|: the base spread numerator.
	baseSum int64

	// idxStart/idxItems: node -> profiles whose base frontier contains
	// it (the inverted index driving warm greedy re-evaluation).
	idxStart []int32
	idxItems []int32

	// generation counts Extend calls that added profiles; estimates and
	// selections are pure functions of the pool contents, so callers may
	// cache results keyed by (generation, query) and invalidate on change.
	generation uint64

	scratch sync.Pool // of *evalScratch
}

// Norms returns the pool's per-node in-weight normalizers (see
// Model.Norms). The slice aliases the pool's model and must not be
// modified. kboost:aliased-view
func (p *Pool) Norms() []float64 { return p.m.Norms() }

// NewPool creates an empty pool for (g, seeds). seed determines every
// profile the pool will ever contain; workers <= 0 means GOMAXPROCS.
// Unlike PRR pools, pool contents do not depend on workers.
func NewPool(g *graph.Graph, seeds []int32, seed uint64, workers int) (*Pool, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	for _, v := range seeds {
		if v < 0 || int(v) >= g.N() {
			return nil, fmt.Errorf("lt: seed %d out of range [0,%d)", v, g.N())
		}
	}
	p := &Pool{
		m:           New(g),
		g:           g,
		seedMask:    make([]bool, g.N()),
		workers:     workers,
		root:        rng.New(seed),
		activeStart: []int32{0},
		frontStart:  []int32{0},
		idxStart:    make([]int32, g.N()+1),
	}
	for _, v := range seeds {
		if !p.seedMask[v] {
			p.seedMask[v] = true
			p.seeds = append(p.seeds, v)
		}
	}
	slices.Sort(p.seeds)
	p.scratch.New = func() interface{} { return newEvalScratch(g.N()) }
	return p, nil
}

// NumProfiles returns the number of sampled threshold profiles.
func (p *Pool) NumProfiles() int { return len(p.profileSeed) }

// Graph returns the influence graph the pool samples from.
func (p *Pool) Graph() *graph.Graph { return p.g }

// Seeds returns the pool's (sorted, deduplicated) seed set. The slice
// is owned by the pool (kboost:aliased-view); callers must not modify
// it.
func (p *Pool) Seeds() []int32 { return p.seeds }

// Generation identifies the pool's contents: it increments on every
// Extend call that adds profiles.
func (p *Pool) Generation() uint64 { return p.generation }

// BaseSpread returns the pooled estimate of the unboosted LT spread
// σ̂(∅), cached from the base fixed points.
func (p *Pool) BaseSpread() float64 {
	if len(p.profileSeed) == 0 {
		return 0
	}
	return float64(p.baseSum) / float64(len(p.profileSeed))
}

// MemoryEstimate returns the pool's resident bytes: the flat profile
// state (active and frontier CSRs, frontier weights), the inverted
// index and the profile seeds — exact array lengths × element sizes,
// matching the arena accounting prr.Pool reports, so the engine's
// byte-based eviction compares the two pool families fairly.
func (p *Pool) MemoryEstimate() int64 {
	bytes := int64(len(p.activeItems)+len(p.frontItems)+len(p.idxItems)) * 4
	bytes += int64(len(p.frontW)) * 8
	bytes += int64(len(p.profileSeed)) * 8
	bytes += int64(len(p.activeStart)+len(p.frontStart)+len(p.idxStart)) * 4
	return bytes
}

// theta returns θ(i,v) ∈ (0,1): the threshold of node v in the profile
// seeded by ps, as a splitmix64-style hash so the draw is independent
// of evaluation order. A zero threshold would auto-activate any touched
// node, so the (measure-zero) 0 output is clamped away.
func theta(ps uint64, v int32) float64 {
	x := ps ^ (uint64(uint32(v))+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	t := float64(x>>11) * (1.0 / (1 << 53))
	if t == 0 {
		t = 1e-18
	}
	return t
}

// evalScratch is the reusable per-worker state for profile evaluation:
// dense arrays addressed by node id, cleaned after each profile via the
// load and modification logs so reuse is O(touched), not O(n).
type evalScratch struct {
	wIn    []float64
	active []bool
	queue  []int32

	loadedAct []int32 // nodes whose active flag was set by loadState
	loadedW   []int32 // nodes whose wIn was set by loadState

	pushNode []int32   // every push target, in order
	pushPrev []float64 // wIn value before that push
	actNode  []int32   // every activation, in order

	tstamp []int32 // touch-collection / dedup stamps
	tepoch int32   // kboost:epoch
}

// bumpTouchEpoch advances the touch stamp, clearing the stamp array
// when the int32 epoch wraps so stale stamps can never read as current.
// kboost:epoch-helper
func (s *evalScratch) bumpTouchEpoch() {
	if s.tepoch == math.MaxInt32 {
		clear(s.tstamp)
		s.tepoch = 0
	}
	s.tepoch++
}

func newEvalScratch(n int) *evalScratch {
	return &evalScratch{
		wIn:    make([]float64, n),
		active: make([]bool, n),
		tstamp: make([]int32, n),
	}
}

func (p *Pool) getScratch() *evalScratch  { return p.scratch.Get().(*evalScratch) }
func (p *Pool) putScratch(s *evalScratch) { p.scratch.Put(s) }

// reset clears every node the scratch touched since the last reset.
func (s *evalScratch) reset() {
	for _, v := range s.loadedAct {
		s.active[v] = false
	}
	for _, v := range s.loadedW {
		s.wIn[v] = 0
	}
	for _, v := range s.pushNode {
		s.wIn[v] = 0
	}
	for _, v := range s.actNode {
		s.active[v] = false
	}
	s.loadedAct = s.loadedAct[:0]
	s.loadedW = s.loadedW[:0]
	s.pushNode = s.pushNode[:0]
	s.pushPrev = s.pushPrev[:0]
	s.actNode = s.actNode[:0]
	s.queue = s.queue[:0]
}

// loadState installs a profile state (active set + frontier weights)
// into the scratch arrays.
func (s *evalScratch) loadState(active, front []int32, frontW []float64) {
	for _, u := range active {
		s.active[u] = true
	}
	s.loadedAct = append(s.loadedAct, active...)
	for j, v := range front {
		s.wIn[v] = frontW[j]
	}
	s.loadedW = append(s.loadedW, front...)
}

// runCascade drains s.queue, pushing each newly active node's out-edge
// weights into inactive neighbors and activating those whose
// accumulated in-weight reaches their threshold. Edges into node t use
// the boosted probability when inB[t] (inB may be nil; a tentatively
// evaluated candidate is already active when the cascade starts, so
// pushes into it never occur and it needs no mask entry). Every push
// and activation is logged so the caller can either roll back
// (tentative evaluation) or commit and reset. Returns the number of
// activations (excluding nodes queued by the caller).
func (p *Pool) runCascade(ps uint64, inB []bool, s *evalScratch) int {
	g := p.g
	activated := 0
	for qi := 0; qi < len(s.queue); qi++ {
		u := s.queue[qi]
		to := g.OutTo(u)
		pp := g.OutP(u)
		pb := g.OutPBoost(u)
		for i, t := range to {
			if s.active[t] {
				continue
			}
			w := pp[i]
			if inB != nil && inB[t] {
				w = pb[i]
			}
			s.pushNode = append(s.pushNode, t)
			s.pushPrev = append(s.pushPrev, s.wIn[t])
			s.wIn[t] += w / p.m.norm[t]
			if s.wIn[t] >= theta(ps, t) {
				s.active[t] = true
				s.actNode = append(s.actNode, t)
				s.queue = append(s.queue, t)
				activated++
			}
		}
	}
	s.queue = s.queue[:0]
	return activated
}

// rollback undoes pushes and activations past the given log marks,
// restoring the state that was loaded (or committed) before them.
func (s *evalScratch) rollback(pushMark, actMark int) {
	for i := len(s.pushNode) - 1; i >= pushMark; i-- {
		s.wIn[s.pushNode[i]] = s.pushPrev[i]
	}
	for _, v := range s.actNode[actMark:] {
		s.active[v] = false
	}
	s.pushNode = s.pushNode[:pushMark]
	s.pushPrev = s.pushPrev[:pushMark]
	s.actNode = s.actNode[:actMark]
}

// simulate runs one full fixed point from an empty scratch: seeds
// activate unconditionally, then the cascade runs under boost mask inB.
// It returns the active count and leaves the final state in s (caller
// extracts what it needs, then resets).
func (p *Pool) simulate(ps uint64, inB []bool, s *evalScratch) int {
	for _, v := range p.seeds {
		s.active[v] = true
		s.actNode = append(s.actNode, v)
		s.queue = append(s.queue, v)
	}
	return len(p.seeds) + p.runCascade(ps, inB, s)
}

// boostedInWeight recomputes node v's accumulated in-weight from the
// currently active in-neighbors using the boosted probabilities — the
// value v's frontier weight takes when v joins the boost set.
func (p *Pool) boostedInWeight(v int32, s *evalScratch) float64 {
	var w float64
	in := p.g.InFrom(v)
	pb := p.g.InPBoost(v)
	for j, u := range in {
		if s.active[u] {
			w += pb[j]
		}
	}
	return w / p.m.norm[v]
}

// baseActive / baseFront / baseFrontW / baseCount are CSR views of one
// profile's cached base-world state.
func (p *Pool) baseActive(pi int) []int32 {
	return p.activeItems[p.activeStart[pi]:p.activeStart[pi+1]]
}
func (p *Pool) baseFront(pi int) []int32 {
	return p.frontItems[p.frontStart[pi]:p.frontStart[pi+1]]
}
func (p *Pool) baseFrontW(pi int) []float64 {
	return p.frontW[p.frontStart[pi]:p.frontStart[pi+1]]
}
func (p *Pool) baseCount(pi int) int32 {
	return p.activeStart[pi+1] - p.activeStart[pi]
}

// frontierProfiles returns the profiles whose base frontier contains v.
func (p *Pool) frontierProfiles(v int32) []int32 {
	return p.idxItems[p.idxStart[v]:p.idxStart[v+1]]
}

// ltShard is one worker's private Extend output: the base-world state
// of a contiguous run of profiles, stored flat exactly like the pool's
// arrays (local CSR offsets starting at 0). Shards cover ascending
// profile ranges and are merged in range order with bulk appends, so
// pool contents stay independent of scheduling and a shard costs O(1)
// allocations instead of O(profiles × 3).
type ltShard struct {
	activeStart []int32 // len = profiles+1
	activeItems []int32
	frontStart  []int32 // len = profiles+1
	frontItems  []int32
	frontW      []float64
}

// Extend grows the pool to at least target profiles. Growth is
// incremental: existing profiles and their cached fixed points are
// untouched, only the shortfall is simulated (sharded across the
// pool's workers into per-shard arenas, merged in profile order), and
// the frontier index is merged in one pass.
func (p *Pool) Extend(target int) {
	// Ctx-less compat form; without a cancelable ctx or armed faults the
	// context variant cannot fail.
	_ = p.ExtendContext(context.Background(), target)
}

// ExtendContext is Extend with cooperative cancellation and shard-worker
// panic containment. On any error — ctx canceled, injected fault, or a
// worker panic (returned as *panicsafe.Error) — no shard is merged and
// the pool rolls back to its exact pre-call state: the appended profile
// seeds are truncated and the root RNG restored, so a retried call
// draws the same seeds again and the final pool is bit-identical to one
// built without interruption.
func (p *Pool) ExtendContext(ctx context.Context, target int) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	need := target - len(p.profileSeed)
	if need <= 0 {
		return nil
	}
	from := len(p.profileSeed)
	savedRoot := *p.root // for rollback: Uint64 draws below advance it
	for i := 0; i < need; i++ {
		p.profileSeed = append(p.profileSeed, p.root.Uint64())
	}
	shards := make([]ltShard, p.workers)
	var wg sync.WaitGroup
	var stop atomic.Bool // flipped on first failure so sibling shards bail early
	errs := make([]error, p.workers)
	chunk := (need + p.workers - 1) / p.workers
	for w := 0; w < p.workers; w++ {
		lo := w * chunk
		if lo >= need {
			break
		}
		hi := lo + chunk
		if hi > need {
			hi = need
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			err := panicsafe.Do(func() {
				if e := faults.CheckContext(ctx, faults.PoolBuildShard); e != nil {
					errs[w] = e
					stop.Store(true)
					return
				}
				s := p.getScratch()
				defer p.putScratch(s)
				sh := &shards[w]
				sh.activeStart = append(sh.activeStart, 0)
				sh.frontStart = append(sh.frontStart, 0)
				for i := lo; i < hi; i++ {
					if (i-lo)%cancelStride == 0 && (stop.Load() || ctx.Err() != nil) {
						errs[w] = ctx.Err()
						stop.Store(true)
						return
					}
					p.simulateBaseInto(p.profileSeed[from+i], sh, s)
				}
			})
			if err != nil {
				errs[w] = err
				stop.Store(true)
			}
		}(w, lo, hi)
	}
	wg.Wait()
	abort := ctx.Err()
	for _, err := range errs {
		if err != nil {
			abort = err
			break
		}
	}
	if abort != nil {
		p.profileSeed = p.profileSeed[:from]
		*p.root = savedRoot
		return abort
	}

	// Merge the shards in profile order: bulk-append the flat state,
	// shifting the local CSR offsets. Trailing workers get no profiles
	// when need is smaller than their chunk offset; their shards stay
	// zero-valued and are skipped.
	for w := range shards {
		sh := &shards[w]
		if len(sh.activeStart) == 0 {
			continue
		}
		activeBase := int32(len(p.activeItems))
		frontBase := int32(len(p.frontItems))
		p.activeItems = append(p.activeItems, sh.activeItems...)
		p.frontItems = append(p.frontItems, sh.frontItems...)
		p.frontW = append(p.frontW, sh.frontW...)
		for _, end := range sh.activeStart[1:] {
			p.activeStart = append(p.activeStart, activeBase+end)
		}
		for _, end := range sh.frontStart[1:] {
			p.frontStart = append(p.frontStart, frontBase+end)
		}
		p.baseSum += int64(len(sh.activeItems))
	}

	// Merge the frontier index: count the batch contribution per node,
	// then interleave old and new posting lists in one O(old+new) pass.
	n := p.g.N()
	counts := make([]int32, n)
	for w := range shards {
		for _, v := range shards[w].frontItems {
			counts[v]++
		}
	}
	newStart := make([]int32, n+1)
	for v := 0; v < n; v++ {
		newStart[v+1] = newStart[v] + (p.idxStart[v+1] - p.idxStart[v]) + counts[v]
	}
	newItems := make([]int32, newStart[n])
	next := counts // reuse as per-node write cursors
	for v := 0; v < n; v++ {
		old := p.idxItems[p.idxStart[v]:p.idxStart[v+1]]
		copy(newItems[newStart[v]:], old)
		next[v] = newStart[v] + int32(len(old))
	}
	for pi := from; pi < len(p.profileSeed); pi++ {
		for _, v := range p.baseFront(pi) {
			newItems[next[v]] = int32(pi)
			next[v]++
		}
	}
	p.idxStart, p.idxItems = newStart, newItems
	p.generation++
	return nil
}

// simulateBaseInto runs one profile's base-world (B = ∅) fixed point
// and appends its cached state to sh: sorted active set, sorted
// frontier with accumulated base in-weights.
func (p *Pool) simulateBaseInto(ps uint64, sh *ltShard, s *evalScratch) {
	p.simulate(ps, nil, s)
	activeOff := len(sh.activeItems)
	sh.activeItems = append(sh.activeItems, s.actNode...)
	active := sh.activeItems[activeOff:]
	slices.Sort(active)
	sh.activeStart = append(sh.activeStart, int32(len(sh.activeItems)))
	// Frontier: unique push targets that did not activate.
	s.bumpTouchEpoch()
	frontOff := len(sh.frontItems)
	for _, v := range s.pushNode {
		if s.active[v] || s.tstamp[v] == s.tepoch {
			continue
		}
		s.tstamp[v] = s.tepoch
		sh.frontItems = append(sh.frontItems, v)
	}
	front := sh.frontItems[frontOff:]
	slices.Sort(front)
	for _, v := range front {
		sh.frontW = append(sh.frontW, s.wIn[v])
	}
	sh.frontStart = append(sh.frontStart, int32(len(sh.frontItems)))
	s.reset()
}

// estimateParallelMin is the minimum number of profiles before batch
// estimation fans out to the pool's workers; a variable so tests can
// force the parallel path on small pools.
var estimateParallelMin = 256

// EstimateSpread returns the pooled estimate of the boosted-LT spread
// σ̂(B) by incrementally evaluating boost from every profile's cached
// base fixed point. It is deterministic for a fixed pool generation,
// bit-exact across worker counts, and shares its possible worlds with
// every other estimate from the same pool (common random numbers).
func (p *Pool) EstimateSpread(boost []int32) (float64, error) {
	total, err := p.estimateCount(boost)
	if err != nil {
		return 0, err
	}
	return float64(total) / float64(len(p.profileSeed)), nil
}

// estimateCount returns Σ_i |active_i(B)|, the integer numerator of
// the pooled spread estimate.
func (p *Pool) estimateCount(boost []int32) (int64, error) {
	R := len(p.profileSeed)
	if R == 0 {
		return 0, fmt.Errorf("lt: estimate on an empty pool (call Extend first)")
	}
	mask := make([]bool, p.g.N())
	for _, v := range boost {
		if v < 0 || int(v) >= p.g.N() {
			return 0, fmt.Errorf("lt: boost node %d out of range [0,%d)", v, p.g.N())
		}
		mask[v] = true
	}
	// Dense boost list (deduplicated, sorted) for the per-profile pass.
	var bset []int32
	for v := int32(0); int(v) < p.g.N(); v++ {
		if mask[v] {
			bset = append(bset, v)
		}
	}

	evalChunk := func(lo, hi int, s *evalScratch) int64 {
		var sum int64
		for pi := lo; pi < hi; pi++ {
			sum += int64(p.baseCount(pi)) + int64(p.evalBoostSet(pi, bset, mask, s))
		}
		return sum
	}
	if R < estimateParallelMin || p.workers <= 1 {
		s := p.getScratch()
		defer p.putScratch(s)
		return evalChunk(0, R, s), nil
	}
	sums := make([]int64, p.workers)
	var wg sync.WaitGroup
	chunk := (R + p.workers - 1) / p.workers
	for w := 0; w < p.workers; w++ {
		lo := w * chunk
		if lo >= R {
			break
		}
		hi := lo + chunk
		if hi > R {
			hi = R
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			s := p.getScratch()
			defer p.putScratch(s)
			sums[w] = evalChunk(lo, hi, s)
		}(w, lo, hi)
	}
	wg.Wait()
	var total int64
	for _, v := range sums {
		total += v
	}
	return total, nil
}

// EstimateBoost returns the pooled estimate of the LT boost
// Δ̂_S(B) = σ̂(B) − σ̂(∅). Both terms are evaluated on the same
// threshold profiles, so the difference is coupled (far lower variance
// than differencing two independent Monte-Carlo runs), exactly zero for
// an empty or ineffective boost set, and — because the activation sums
// are differenced as integers before dividing — bit-identical to the
// estimate GreedyBoost reports for the same boost set.
func (p *Pool) EstimateBoost(boost []int32) (float64, error) {
	total, err := p.estimateCount(boost)
	if err != nil {
		return 0, err
	}
	return float64(total-p.baseSum) / float64(len(p.profileSeed)), nil
}

// evalBoostSet computes the marginal activations of boosting bset on
// profile pi, starting from the cached base fixed point. The scratch is
// left clean.
func (p *Pool) evalBoostSet(pi int, bset []int32, mask []bool, s *evalScratch) int {
	ps := p.profileSeed[pi]
	s.loadState(p.baseActive(pi), p.baseFront(pi), p.baseFrontW(pi))
	// Phase 1: recompute every inactive boosted node's in-weight with
	// the boosted probabilities, against the *base* active set only —
	// interleaving with activation would double-count cascade pushes.
	type bw struct {
		v int32
		w float64
	}
	var pend []bw
	for _, b := range bset {
		if s.active[b] {
			continue
		}
		pend = append(pend, bw{b, p.boostedInWeight(b, s)})
	}
	// Phase 2: install the recomputed weights, activate those at
	// threshold, then run the cascade under the boost mask.
	delta := 0
	for _, e := range pend {
		s.pushNode = append(s.pushNode, e.v)
		s.pushPrev = append(s.pushPrev, s.wIn[e.v])
		s.wIn[e.v] = e.w
		if e.w >= theta(ps, e.v) {
			s.active[e.v] = true
			s.actNode = append(s.actNode, e.v)
			s.queue = append(s.queue, e.v)
			delta++
		}
	}
	delta += p.runCascade(ps, mask, s)
	s.reset()
	return delta
}

// estimateSpreadNaive re-simulates every profile from scratch under the
// boost mask — the retained reference implementation the property tests
// hold EstimateSpread to.
func (p *Pool) estimateSpreadNaive(boost []int32) float64 {
	mask := make([]bool, p.g.N())
	for _, v := range boost {
		mask[v] = true
	}
	s := p.getScratch()
	defer p.putScratch(s)
	var sum int64
	for pi := range p.profileSeed {
		sum += int64(p.simulate(p.profileSeed[pi], mask, s))
		s.reset()
	}
	return float64(sum) / float64(len(p.profileSeed))
}
