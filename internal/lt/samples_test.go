package lt

import (
	"math"
	"testing"

	"github.com/kboost/kboost/internal/rng"
	"github.com/kboost/kboost/internal/stats"
	"github.com/kboost/kboost/internal/testutil"
)

func TestEstimateSamplesWorkerInvariance(t *testing.T) {
	r := rng.New(41)
	g := testutil.RandomGraph(r, 40, 120, 0.4)
	seeds := []int32{0, 3}
	boost := []int32{7, 9}
	var ref, refDelta []float64
	for _, workers := range []int{1, 2, 5, 13} {
		spread, delta, err := EstimateSamples(g, seeds, boost, Options{Sims: 97, Seed: 5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref, refDelta = spread, delta
			continue
		}
		for i := range ref {
			if spread[i] != ref[i] || delta[i] != refDelta[i] {
				t.Fatalf("workers=%d: sample %d diverged", workers, i)
			}
		}
	}
}

func TestEstimateSamplesMatchesEstimateSpread(t *testing.T) {
	r := rng.New(42)
	g := testutil.RandomGraph(r, 40, 120, 0.3)
	seeds := []int32{1, 2}
	boost := []int32{5, 6}
	const sims = 20000
	spread, delta, err := EstimateSamples(g, seeds, boost, Options{Sims: sims, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ss, ds := stats.Summarize(spread), stats.Summarize(delta)
	wantSpread, err := EstimateSpread(g, seeds, boost, Options{Sims: sims, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	wantDelta, err := EstimateBoost(g, seeds, boost, Options{Sims: sims, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ss.Mean-wantSpread) > 4*ss.CI95()+0.05 {
		t.Fatalf("sampled spread %v vs %v (CI %v)", ss.Mean, wantSpread, ss.CI95())
	}
	if math.Abs(ds.Mean-wantDelta) > 4*ds.CI95()+0.1 {
		t.Fatalf("sampled delta %v vs %v (CI %v)", ds.Mean, wantDelta, ds.CI95())
	}
}
