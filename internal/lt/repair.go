package lt

// This file is the LT side of delta graph mutation: Pool.Repair
// transitions a pool to a patched graph by re-running the cached base
// fixed point only for the threshold profiles a delta could have
// changed, copying every other profile's cached state by reference.
//
// A profile's base fixed point depends on the graph only through (a)
// the out-edge lists of its active nodes — those are the only edges the
// cascade ever walks — and (b) the in-weight normalizers norm[t] of its
// push targets, all of which lie in active ∪ frontier and change only
// when t's in-edge list changes. Thresholds θ(ps, v) are a pure hash of
// the profile seed, and profile seeds are drawn serially from the pool
// root before any simulation, so they are graph-independent and survive
// repair: a repaired pool is bit-identical to a cold pool built on the
// patched graph at the same (seed, profiles), and future Extends of the
// two pools stay identical because the root RNG state matches too.

import (
	"fmt"
	"sync"

	"github.com/kboost/kboost/internal/graph"
)

// Repair transitions the pool from its current graph to g2 — the result
// of applying an edge delta whose per-node out/in-edge dirtiness is
// dirtyOut/dirtyIn (see graph.DeltaEffect) — re-simulating exactly the
// profiles whose base cascade crossed a mutated edge list: those with
// an active node in dirtyOut, or an active or frontier node in dirtyIn.
//
// touched reports how many profiles needed re-simulation. When the
// touched share of the pool's total stored cascade size — each
// profile's active-set plus frontier length, the quantity
// re-simulation cost is proportional to — exceeds maxFrac
// (0 < maxFrac <= 1), Repair declines without mutating the pool and
// returns ok == false; the caller decides what to do with a declined
// pool (the engine drops it and lets the next query rebuild cold).
// Weighting by cascade size instead of profile count mirrors the PRR
// repair fallback: on dense supercritical graphs the profiles a delta
// touches are exactly the expensive ones, so an unweighted count
// understates the repair bill.
//
// The node universe is fixed: g2 must have the same node count (deltas
// mutate edges only). Growing the universe is a re-upload.
func (p *Pool) Repair(g2 *graph.Graph, dirtyOut, dirtyIn []bool, maxFrac float64) (touched int, ok bool, err error) {
	n := p.g.N()
	if g2.N() != n {
		return 0, false, fmt.Errorf("lt: repair changes node count %d -> %d", n, g2.N())
	}
	if len(dirtyOut) != n || len(dirtyIn) != n {
		return 0, false, fmt.Errorf("lt: dirty masks have %d/%d entries, want %d", len(dirtyOut), len(dirtyIn), n)
	}

	R := len(p.profileSeed)
	touchedMask := make([]bool, R)
	perWorker := make([]int, p.workers)
	perWorkerCost := make([]int64, p.workers)
	chunk := (R + p.workers - 1) / p.workers
	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		lo := w * chunk
		if lo >= R {
			break
		}
		hi := min(lo+chunk, R)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			c := 0
			var cost int64
			for pi := lo; pi < hi; pi++ {
				hit := false
				for _, v := range p.baseActive(pi) {
					if dirtyOut[v] || dirtyIn[v] {
						hit = true
						break
					}
				}
				if !hit {
					for _, v := range p.baseFront(pi) {
						if dirtyIn[v] {
							hit = true
							break
						}
					}
				}
				if hit {
					touchedMask[pi] = true
					c++
					cost += int64(len(p.baseActive(pi)) + len(p.baseFront(pi)))
				}
			}
			perWorker[w] = c
			perWorkerCost[w] = cost
		}(w, lo, hi)
	}
	wg.Wait()
	var touchedCost int64
	for w := range perWorker {
		touched += perWorker[w]
		touchedCost += perWorkerCost[w]
	}
	totalCost := int64(len(p.activeItems) + len(p.frontItems))
	if totalCost > 0 && float64(touchedCost) > maxFrac*float64(totalCost) {
		return touched, false, nil
	}

	// Swap in the patched graph and its recomputed normalizers before
	// re-simulation; the old cached arrays stay intact as the copy
	// source until the assembly below.
	oldActiveStart, oldActiveItems := p.activeStart, p.activeItems
	oldFrontStart, oldFrontItems, oldFrontW := p.frontStart, p.frontItems, p.frontW
	p.g = g2
	p.m = New(g2)

	// Workers re-simulate only their touched profiles into per-worker
	// shards. Untouched profiles are not staged anywhere: the assembly
	// below copies their cached segments straight out of the old arrays,
	// once. (An earlier version routed every profile — touched or not —
	// through the shard buffers and then merged the shards, moving ~all
	// of a pool's hundreds of megabytes twice per patch; the repair path
	// is memmove-bound, so that second copy was its single largest cost.)
	shards := make([]ltShard, p.workers)
	for w := 0; w < p.workers; w++ {
		lo := w * chunk
		if lo >= R {
			break
		}
		hi := min(lo+chunk, R)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			s := p.getScratch()
			defer p.putScratch(s)
			sh := &shards[w]
			sh.activeStart = append(sh.activeStart, 0)
			sh.frontStart = append(sh.frontStart, 0)
			for pi := lo; pi < hi; pi++ {
				if touchedMask[pi] {
					p.simulateBaseInto(p.profileSeed[pi], sh, s)
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()

	// Exact-size the new arrays: untouched segments keep their old
	// lengths, touched ones take their re-simulated shard lengths.
	newActive := len(oldActiveItems)
	newFront := len(oldFrontItems)
	for pi := 0; pi < R; pi++ {
		if touchedMask[pi] {
			newActive -= int(oldActiveStart[pi+1] - oldActiveStart[pi])
			newFront -= int(oldFrontStart[pi+1] - oldFrontStart[pi])
		}
	}
	for w := range shards {
		newActive += len(shards[w].activeItems)
		newFront += len(shards[w].frontItems)
	}

	activeStart := make([]int32, R+1)
	activeItems := make([]int32, newActive)
	frontStart := make([]int32, R+1)
	frontItems := make([]int32, newFront)
	frontW := make([]float64, newFront)

	// Assemble in profile order. A maximal untouched run is contiguous
	// in the old arrays, so it moves as one bulk copy; each touched
	// profile comes from its worker's shard, consumed in range order.
	shCur := make([]int, p.workers)
	var aw, fw int32
	for pi := 0; pi < R; {
		if !touchedMask[pi] {
			j := pi
			for j < R && !touchedMask[j] {
				j++
			}
			a0, a1 := oldActiveStart[pi], oldActiveStart[j]
			copy(activeItems[aw:], oldActiveItems[a0:a1])
			f0, f1 := oldFrontStart[pi], oldFrontStart[j]
			copy(frontItems[fw:], oldFrontItems[f0:f1])
			copy(frontW[fw:], oldFrontW[f0:f1])
			da, df := aw-a0, fw-f0
			for i := pi; i < j; i++ {
				activeStart[i+1] = oldActiveStart[i+1] + da
				frontStart[i+1] = oldFrontStart[i+1] + df
			}
			aw += a1 - a0
			fw += f1 - f0
			pi = j
			continue
		}
		w := pi / chunk
		sh := &shards[w]
		k := shCur[w]
		shCur[w]++
		a0, a1 := sh.activeStart[k], sh.activeStart[k+1]
		copy(activeItems[aw:], sh.activeItems[a0:a1])
		aw += a1 - a0
		activeStart[pi+1] = aw
		f0, f1 := sh.frontStart[k], sh.frontStart[k+1]
		copy(frontItems[fw:], sh.frontItems[f0:f1])
		copy(frontW[fw:], sh.frontW[f0:f1])
		fw += f1 - f0
		frontStart[pi+1] = fw
		pi++
	}
	p.activeStart, p.activeItems = activeStart, activeItems
	p.frontStart, p.frontItems, p.frontW = frontStart, frontItems, frontW
	p.baseSum = int64(newActive)

	// Rebuild the frontier index in one counting pass.
	counts := make([]int32, n)
	for _, v := range p.frontItems {
		counts[v]++
	}
	newStart := make([]int32, n+1)
	for v := 0; v < n; v++ {
		newStart[v+1] = newStart[v] + counts[v]
	}
	newItems := make([]int32, newStart[n])
	next := counts // reuse as per-node write cursors
	copy(next, newStart[:n])
	for pi := 0; pi < R; pi++ {
		for _, v := range p.baseFront(pi) {
			newItems[next[v]] = int32(pi)
			next[v]++
		}
	}
	p.idxStart, p.idxItems = newStart, newItems
	p.generation++
	return touched, true, nil
}
