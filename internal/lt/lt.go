// Package lt implements a boosted Linear Threshold model, the extension
// direction the paper's conclusion singles out ("investigate similar
// problems under other influence diffusion models, for example the
// well-known Linear Threshold model").
//
// Model: node v draws a threshold θ_v ~ U[0,1]; it activates when the
// summed weight of its active in-neighbors reaches θ_v. Edge weights
// derive from the influence probabilities: with W'(v) = Σ_u p'(u,v) and
// norm(v) = max(1, W'(v)),
//
//	w(u,v)  = p(u,v)  / norm(v)   (v not boosted)
//	w'(u,v) = p'(u,v) / norm(v)   (v boosted)
//
// so weights into any node sum to at most 1 and boosting only raises
// them — the LT analogue of the influence boosting model. There is no
// approximation theory here (the boosted-LT objective inherits the
// non-submodularity problems); the package provides simulation and a
// Monte-Carlo greedy heuristic, plus the estimator plumbing needed to
// experiment with the model.
package lt

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/rng"
)

// mcSims counts Monte-Carlo simulations launched through EstimateSpread
// — the regression meter for GreedyBoost's simulation budget (the base
// spread used to be re-estimated inside every candidate evaluation).
var mcSims atomic.Int64

// Model is a boosted-LT instance derived from an influence graph.
type Model struct {
	g    *graph.Graph
	norm []float64 // per node: max(1, Σ_in p')
}

// New derives a boosted-LT model from g.
func New(g *graph.Graph) *Model {
	m := &Model{g: g, norm: make([]float64, g.N())}
	for v := int32(0); int(v) < g.N(); v++ {
		var sum float64
		for _, pb := range g.InPBoost(v) {
			sum += pb
		}
		if sum < 1 {
			sum = 1
		}
		m.norm[v] = sum
	}
	return m
}

// Norms returns the per-node in-weight normalizers max(1, Σ_in p').
// The slice aliases the model (kboost:aliased-view): treat it as
// read-only. Exported for the engine's tier-0 closed-form estimator,
// which approximates boosted-LT with the norm-divided probabilities.
func (m *Model) Norms() []float64 { return m.norm }

// Weight returns the effective weight of edge (u,v) given v's boost
// status, or 0 if the edge does not exist.
func (m *Model) Weight(u, v int32, boosted bool) float64 {
	p, pb, ok := m.g.FindEdge(u, v)
	if !ok {
		return 0
	}
	if boosted {
		return pb / m.norm[v]
	}
	return p / m.norm[v]
}

// Simulator runs boosted-LT diffusions. Not safe for concurrent use.
type Simulator struct {
	m *Model

	threshold []float64
	weightIn  []float64 // accumulated active in-weight
	active    []bool
	queue     []int32
	touched   []int32
}

// NewSimulator returns a Simulator for m.
func NewSimulator(m *Model) *Simulator {
	n := m.g.N()
	return &Simulator{
		m:         m,
		threshold: make([]float64, n),
		weightIn:  make([]float64, n),
		active:    make([]bool, n),
	}
}

// SpreadOnce runs one boosted-LT diffusion and returns the number of
// active nodes at quiescence. boost may be nil.
func (s *Simulator) SpreadOnce(seeds []int32, boost []bool, r *rng.Source) int {
	g := s.m.g
	// Reset state touched by the previous run.
	for _, v := range s.touched {
		s.active[v] = false
		s.weightIn[v] = 0
		s.threshold[v] = 0
	}
	s.touched = s.touched[:0]
	s.queue = s.queue[:0]

	activate := func(v int32) {
		s.active[v] = true
		s.queue = append(s.queue, v)
	}
	touch := func(v int32) {
		if s.threshold[v] == 0 {
			s.threshold[v] = r.Float64()
			if s.threshold[v] == 0 {
				s.threshold[v] = 1e-18 // avoid re-draw on revisit
			}
			s.touched = append(s.touched, v)
		}
	}
	for _, v := range seeds {
		if !s.active[v] {
			touch(v)
			activate(v)
		}
	}
	count := len(s.queue)
	for qi := 0; qi < len(s.queue); qi++ {
		u := s.queue[qi]
		to := g.OutTo(u)
		p := g.OutP(u)
		pb := g.OutPBoost(u)
		for i, v := range to {
			if s.active[v] {
				continue
			}
			touch(v)
			w := p[i]
			if boost != nil && boost[v] {
				w = pb[i]
			}
			s.weightIn[v] += w / s.m.norm[v]
			if s.weightIn[v] >= s.threshold[v] {
				activate(v)
				count++
			}
		}
	}
	return count
}

// Options configures Monte-Carlo estimation.
type Options struct {
	Sims    int    // default 10000
	Seed    uint64 // default 1
	Workers int    // default GOMAXPROCS
}

func (o Options) withDefaults() Options {
	if o.Sims <= 0 {
		o.Sims = 10000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers > o.Sims {
		o.Workers = o.Sims
	}
	return o
}

// EstimateSpread estimates the expected boosted-LT spread.
func EstimateSpread(g *graph.Graph, seeds, boost []int32, opt Options) (float64, error) {
	for _, v := range append(append([]int32(nil), seeds...), boost...) {
		if v < 0 || int(v) >= g.N() {
			return 0, fmt.Errorf("lt: node %d out of range [0,%d)", v, g.N())
		}
	}
	opt = opt.withDefaults()
	m := New(g)
	mask := make([]bool, g.N())
	for _, v := range boost {
		mask[v] = true
	}
	root := rng.New(opt.Seed)
	sums := make([]float64, opt.Workers)
	var wg sync.WaitGroup
	per := opt.Sims / opt.Workers
	rem := opt.Sims % opt.Workers
	for w := 0; w < opt.Workers; w++ {
		r := root.Split()
		count := per
		if w < rem {
			count++
		}
		if count == 0 {
			continue
		}
		wg.Add(1)
		go func(w, count int) {
			defer wg.Done()
			sim := NewSimulator(m)
			var sum float64
			for i := 0; i < count; i++ {
				sum += float64(sim.SpreadOnce(seeds, mask, r))
			}
			sums[w] = sum
		}(w, count)
	}
	wg.Wait()
	mcSims.Add(int64(opt.Sims))
	var total float64
	for _, s := range sums {
		total += s
	}
	return total / float64(opt.Sims), nil
}

// EstimateBoost estimates the LT boost Δ_S(B) by differencing spreads
// estimated with common random seeds.
func EstimateBoost(g *graph.Graph, seeds, boost []int32, opt Options) (float64, error) {
	withB, err := EstimateSpread(g, seeds, boost, opt)
	if err != nil {
		return 0, err
	}
	withoutB, err := EstimateSpread(g, seeds, nil, opt)
	if err != nil {
		return 0, err
	}
	return withB - withoutB, nil
}

// GreedyBoost is a Monte-Carlo greedy heuristic for boosted-LT: each
// round it evaluates the marginal boost of every candidate (non-seed
// nodes with the largest boost-gain in-weight, capped at candCap) and
// takes the best. It has no approximation guarantee — the paper leaves
// boosted LT as future work — but serves as a reasonable comparator.
// For repeated queries prefer the pooled Pool.GreedyBoost, which reuses
// sampled threshold profiles across rounds, candidates and queries.
func GreedyBoost(g *graph.Graph, seeds []int32, k int, candCap int, opt Options) ([]int32, float64, error) {
	if k < 1 {
		return nil, 0, fmt.Errorf("lt: k=%d must be >= 1", k)
	}
	opt = opt.withDefaults()
	seedMask := make([]bool, g.N())
	for _, s := range seeds {
		seedMask[s] = true
	}
	pool := boostCandidates(g, seedMask, k, candCap)

	// The base spread σ̂_S(∅) is a deterministic function of (g, seeds,
	// opt), so estimate it once up front instead of re-running it inside
	// every candidate's EstimateBoost — this halves the simulation count
	// without changing a single returned value.
	base, err := EstimateSpread(g, seeds, nil, opt)
	if err != nil {
		return nil, 0, err
	}

	var chosen []int32
	chosenMask := make(map[int32]bool)
	best := 0.0
	for round := 0; round < k && round < len(pool); round++ {
		bestV := int32(-1)
		bestVal := best - 1
		for _, cand := range pool {
			if chosenMask[cand] {
				continue
			}
			trial := append(append([]int32(nil), chosen...), cand)
			withB, err := EstimateSpread(g, seeds, trial, opt)
			if err != nil {
				return nil, 0, err
			}
			if val := withB - base; val > bestVal {
				bestV, bestVal = cand, val
			}
		}
		if bestV < 0 {
			break
		}
		chosen = append(chosen, bestV)
		chosenMask[bestV] = true
		best = bestVal
	}
	return chosen, best, nil
}
