package lt

import (
	"testing"

	"github.com/kboost/kboost/internal/dataset"
)

// The pooled-LT benchmarks run on the same flixster stand-in the PRR
// selection benchmarks use, so their ns/op track the serving path's
// warm-query numbers. `make bench` emits them into BENCH_select.json;
// CI smoke-runs them in short mode.

func benchLTPool(b *testing.B) *Pool {
	b.Helper()
	scale, profiles := 0.01, 10000
	if testing.Short() {
		scale, profiles = 0.004, 1000
	}
	spec, err := dataset.ByName("flixster")
	if err != nil {
		b.Fatal(err)
	}
	g, err := spec.Generate(scale, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	seeds := dataset.InfluentialSeeds(g, 20)
	pool, err := NewPool(g, seeds, 7, 0)
	if err != nil {
		b.Fatal(err)
	}
	pool.Extend(profiles)
	return pool
}

// BenchmarkLTSelectWarm measures repeat-query selection on an
// already-built profile pool: the incremental CELF GreedyBoost against
// the retained full-rescan naive reference (which re-simulates every
// profile for every candidate each round — the O(cands·k·R) loop the
// pooled greedy replaces).
func BenchmarkLTSelectWarm(b *testing.B) {
	const k = 10
	pool := benchLTPool(b)
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := pool.GreedyBoost(k, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := pool.greedyBoostNaive(k, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLTEstimateWarm measures the incremental batch estimator
// against the from-scratch re-simulation reference on the same pool.
func BenchmarkLTEstimateWarm(b *testing.B) {
	pool := benchLTPool(b)
	boost := pool.g.N()
	set := []int32{int32(boost / 3), int32(boost / 2), int32(2 * boost / 3)}
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pool.EstimateSpread(set); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pool.estimateSpreadNaive(set)
		}
	})
}

// benchLTPoolShort is the fixed small pool behind the -Short gate
// variants. The full-size pool above puts the naive references at 1–9
// iterations per run — too few for a regression gate to tell signal
// from scheduler noise — so the gated variants run on a pool small
// enough that every sub-benchmark completes ≥ 20 iterations in the
// default benchtime. Sizes are deliberately NOT testing.Short()-gated:
// the gate compares against a committed baseline, so the dimensions
// must be identical on every machine that runs `make bench-gate`.
func benchLTPoolShort(b *testing.B) *Pool {
	b.Helper()
	spec, err := dataset.ByName("flixster")
	if err != nil {
		b.Fatal(err)
	}
	g, err := spec.Generate(0.002, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	seeds := dataset.InfluentialSeeds(g, 10)
	pool, err := NewPool(g, seeds, 7, 0)
	if err != nil {
		b.Fatal(err)
	}
	pool.Extend(200)
	return pool
}

// BenchmarkLTSelectWarmShort is the gated counterpart of
// BenchmarkLTSelectWarm: same incremental-vs-naive comparison, small
// enough to gate on (`make bench-gate` re-runs every benchmark whose
// name matches Warm|PatchRepair against BENCH_select.json).
func BenchmarkLTSelectWarmShort(b *testing.B) {
	const k = 4
	pool := benchLTPoolShort(b)
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := pool.GreedyBoost(k, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := pool.greedyBoostNaive(k, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLTEstimateWarmShort is the gated counterpart of
// BenchmarkLTEstimateWarm on the same small pool.
func BenchmarkLTEstimateWarmShort(b *testing.B) {
	pool := benchLTPoolShort(b)
	boost := pool.g.N()
	set := []int32{int32(boost / 3), int32(boost / 2), int32(2 * boost / 3)}
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pool.EstimateSpread(set); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pool.estimateSpreadNaive(set)
		}
	})
}
