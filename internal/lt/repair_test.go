package lt

import (
	"fmt"
	"testing"

	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/rng"
	"github.com/kboost/kboost/internal/testutil"
)

// randomLTDelta derives a random valid delta against g.
func randomLTDelta(t testing.TB, r *rng.Source, g *graph.Graph, nAdd, nRemove, nReweight int) *graph.EdgeDelta {
	t.Helper()
	existing := g.Edges()
	used := map[graph.EdgeKey]bool{}
	for _, e := range existing {
		used[graph.EdgeKey{From: e.From, To: e.To}] = false
	}
	d := &graph.EdgeDelta{}
	perm := r.Perm(len(existing))
	pi := 0
	takeExisting := func() (graph.Edge, bool) {
		for pi < len(perm) {
			e := existing[perm[pi]]
			pi++
			k := graph.EdgeKey{From: e.From, To: e.To}
			if !used[k] {
				used[k] = true
				return e, true
			}
		}
		return graph.Edge{}, false
	}
	for i := 0; i < nRemove; i++ {
		if e, ok := takeExisting(); ok {
			d.Remove = append(d.Remove, graph.EdgeKey{From: e.From, To: e.To})
		}
	}
	for i := 0; i < nReweight; i++ {
		if e, ok := takeExisting(); ok {
			p := r.Float64() * 0.5
			e.P, e.PBoost = p, 1-(1-p)*(1-p)
			d.Reweight = append(d.Reweight, e)
		}
	}
	for tries := 0; len(d.Add) < nAdd && tries < 50*nAdd+100; tries++ {
		u := int32(r.Intn(g.N()))
		v := int32(r.Intn(g.N()))
		k := graph.EdgeKey{From: u, To: v}
		if _, present := used[k]; u == v || present {
			continue
		}
		used[k] = true
		p := r.Float64() * 0.5
		d.Add = append(d.Add, graph.Edge{From: u, To: v, P: p, PBoost: 1 - (1-p)*(1-p)})
	}
	return d
}

// sameLTPoolBits asserts two pools are bit-identical: same profile
// seeds, cached fixed points, frontier index, estimates and selections.
// got is a repaired pool, want a cold rebuild on the same graph.
func sameLTPoolBits(t *testing.T, label string, got, want *Pool, k int) {
	t.Helper()
	eq := func(what string, a, b interface{}) {
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("%s: %s differ:\n got %v\nwant %v", label, what, a, b)
		}
	}
	eq("profileSeed", got.profileSeed, want.profileSeed)
	eq("activeStart", got.activeStart, want.activeStart)
	eq("activeItems", got.activeItems, want.activeItems)
	eq("frontStart", got.frontStart, want.frontStart)
	eq("frontItems", got.frontItems, want.frontItems)
	eq("frontW", got.frontW, want.frontW)
	eq("baseSum", got.baseSum, want.baseSum)
	eq("idxStart", got.idxStart, want.idxStart)
	eq("idxItems", got.idxItems, want.idxItems)
	eq("BaseSpread", got.BaseSpread(), want.BaseSpread())

	boost := []int32{int32(1 % got.g.N()), int32(5 % got.g.N())}
	ge, err := got.EstimateSpread(boost)
	if err != nil {
		t.Fatalf("%s: EstimateSpread: %v", label, err)
	}
	we, err := want.EstimateSpread(boost)
	if err != nil {
		t.Fatalf("%s: EstimateSpread (cold): %v", label, err)
	}
	eq("EstimateSpread", ge, we)
	// The incremental estimate must still agree with the full
	// re-simulation reference on the repaired pool's graph.
	eq("EstimateSpread vs naive", ge, got.estimateSpreadNaive(boost))

	gb, gv, err := got.GreedyBoost(k, 0)
	if err != nil {
		t.Fatalf("%s: GreedyBoost: %v", label, err)
	}
	wb, wv, err := want.GreedyBoost(k, 0)
	if err != nil {
		t.Fatalf("%s: GreedyBoost (cold): %v", label, err)
	}
	eq("GreedyBoost", gb, wb)
	eq("GreedyBoost value", gv, wv)
}

// TestLTRepairMatchesColdRebuild is the LT equivalence property:
// applying staged delta sequences and repairing after each must leave
// the pool bit-identical to a cold pool built on the final graph at the
// same (seed, profiles), across worker counts.
func TestLTRepairMatchesColdRebuild(t *testing.T) {
	for trial := 0; trial < 3; trial++ {
		for _, workers := range []int{1, 2, 7} {
			tr := rng.New(uint64(trial)*211 + uint64(workers)*29 + 3)
			g := testutil.RandomGraph(tr, 25+tr.Intn(20), 120+tr.Intn(80), 0.5)
			seeds := testutil.RandomSeedSet(tr, g.N(), 1+tr.Intn(2))
			k := 2 + tr.Intn(3)
			seed := uint64(trial)*577 + 19

			pool, err := NewPool(g, seeds, seed, workers)
			if err != nil {
				t.Fatal(err)
			}
			pool.Extend(500)

			batches := 1 + tr.Intn(3)
			for b := 0; b < batches; b++ {
				d := randomLTDelta(t, tr, g, 1+tr.Intn(4), tr.Intn(4), tr.Intn(4))
				g2, eff, err := g.ApplyDelta(d)
				if err != nil {
					t.Fatalf("ApplyDelta: %v", err)
				}
				wantGen := pool.Generation() + 1
				touched, ok, err := pool.Repair(g2, eff.DirtyOut, eff.DirtyIn, 1.0)
				if err != nil {
					t.Fatalf("Repair: %v", err)
				}
				if !ok {
					t.Fatalf("Repair declined at maxFrac=1.0 (touched %d)", touched)
				}
				if touched < 0 || touched > pool.NumProfiles() {
					t.Fatalf("touched %d out of range [0,%d]", touched, pool.NumProfiles())
				}
				if pool.Generation() != wantGen {
					t.Fatalf("generation %d after repair, want %d", pool.Generation(), wantGen)
				}
				if pool.Graph() != g2 {
					t.Fatal("pool graph not swapped")
				}
				g = g2

				cold, err := NewPool(g2, seeds, seed, 1)
				if err != nil {
					t.Fatal(err)
				}
				cold.Extend(500)
				label := fmt.Sprintf("trial %d workers %d batch %d (touched %d)",
					trial, workers, b, touched)
				sameLTPoolBits(t, label, pool, cold, k)

				// Growing a repaired pool must match growing the cold one:
				// the root RNG state survived the repair.
				if b == batches-1 {
					pool.Extend(600)
					cold.Extend(600)
					sameLTPoolBits(t, label+" post-grow", pool, cold, k)
				}
			}
		}
	}
}

// TestLTRepairFallback: when the touched fraction exceeds maxFrac,
// Repair must decline without mutating anything.
func TestLTRepairFallback(t *testing.T) {
	tr := rng.New(7)
	g := testutil.RandomGraph(tr, 20, 100, 0.5)
	seeds := testutil.RandomSeedSet(tr, g.N(), 2)
	pool, err := NewPool(g, seeds, 31, 2)
	if err != nil {
		t.Fatal(err)
	}
	pool.Extend(300)
	gen := pool.Generation()
	base := pool.BaseSpread()

	dirty := make([]bool, g.N())
	for i := range dirty {
		dirty[i] = true
	}
	g2, _, err := g.ApplyDelta(&graph.EdgeDelta{})
	if err != nil {
		t.Fatal(err)
	}
	touched, ok, err := pool.Repair(g2, dirty, dirty, 0.01)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if ok {
		t.Fatalf("Repair accepted %d touched profiles above 1%% threshold", touched)
	}
	if touched == 0 {
		t.Fatal("all-dirty repair touched no profiles")
	}
	if pool.Generation() != gen || pool.Graph() != g || pool.BaseSpread() != base {
		t.Fatal("declined repair mutated the pool")
	}
	if _, ok, err := pool.Repair(g2, dirty, dirty, 1.0); err != nil || !ok {
		t.Fatalf("unrestricted repair failed: ok=%v err=%v", ok, err)
	}
}

// TestLTRepairRejectsNodeCountChange: deltas never change the node
// universe.
func TestLTRepairRejectsNodeCountChange(t *testing.T) {
	tr := rng.New(2)
	g := testutil.RandomGraph(tr, 10, 30, 0.5)
	g2 := testutil.RandomGraph(tr, 11, 30, 0.5)
	pool, err := NewPool(g, []int32{0}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	pool.Extend(50)
	if _, _, err := pool.Repair(g2, make([]bool, g2.N()), make([]bool, g2.N()), 1.0); err == nil {
		t.Fatal("Repair accepted a node-count change")
	}
	if _, _, err := pool.Repair(g, make([]bool, 3), make([]bool, g.N()), 1.0); err == nil {
		t.Fatal("Repair accepted a mis-sized dirty mask")
	}
}
