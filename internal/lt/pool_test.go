package lt

import (
	"fmt"
	"testing"

	"github.com/kboost/kboost/internal/rng"
	"github.com/kboost/kboost/internal/testutil"
)

// randomSeedSet draws 1-3 distinct seed nodes.
func randomSeedSet(r *rng.Source, n int) []int32 {
	numSeeds := 1 + r.Intn(3)
	seeds := make([]int32, 0, numSeeds)
	for len(seeds) < numSeeds {
		s := int32(r.Intn(n))
		dup := false
		for _, prev := range seeds {
			dup = dup || prev == s
		}
		if !dup {
			seeds = append(seeds, s)
		}
	}
	return seeds
}

// TestPoolGreedyMatchesNaive is the equivalence property test for the
// pooled selection subsystem: across random pools, k values and
// interleaved growth, the incremental CELF GreedyBoost must return
// exactly the picks and estimate of the retained full-rescan reference.
func TestPoolGreedyMatchesNaive(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 20; trial++ {
		n := 10 + r.Intn(25)
		m := n + r.Intn(4*n)
		g := testutil.RandomGraph(r, n, m, 0.5)
		seeds := randomSeedSet(r, n)
		pool, err := NewPool(g, seeds, uint64(trial)+1, 1+trial%3)
		if err != nil {
			t.Fatal(err)
		}
		// Grow in stages, checking equivalence between every stage so the
		// frontier index is exercised after each incremental extension.
		target := 0
		for stage := 0; stage < 3; stage++ {
			target += 100 + r.Intn(400)
			pool.Extend(target)
			for _, k := range []int{1, 2, 4} {
				candCap := k + r.Intn(2*k)
				fast, fastEst, err := pool.GreedyBoost(k, candCap)
				if err != nil {
					t.Fatal(err)
				}
				slow, slowEst, err := pool.greedyBoostNaive(k, candCap)
				if err != nil {
					t.Fatal(err)
				}
				if fastEst != slowEst || fmt.Sprint(fast) != fmt.Sprint(slow) {
					t.Fatalf("trial %d stage %d k=%d cap=%d: incremental %v/%v != naive %v/%v",
						trial, stage, k, candCap, fast, fastEst, slow, slowEst)
				}
			}
		}
	}
}

// TestGreedyBoostAmongMatchesDefault pins the explicit-candidate
// variant's contract: handed the default ranking's own list it is
// exactly GreedyBoost, it never picks outside the list, and seeds or
// out-of-range ids in the list are ignored rather than selectable.
func TestGreedyBoostAmongMatchesDefault(t *testing.T) {
	r := rng.New(41)
	for trial := 0; trial < 8; trial++ {
		n := 12 + r.Intn(20)
		g := testutil.RandomGraph(r, n, n+r.Intn(3*n), 0.5)
		seeds := randomSeedSet(r, n)
		pool, err := NewPool(g, seeds, uint64(trial)+5, 2)
		if err != nil {
			t.Fatal(err)
		}
		pool.Extend(300)
		k, candCap := 3, 6
		want, wantEst, err := pool.GreedyBoost(k, candCap)
		if err != nil {
			t.Fatal(err)
		}
		cands := boostCandidates(g, pool.seedMask, k, candCap)
		// Polluted copy: seeds and junk ids must be filtered out.
		dirty := append(append([]int32{seeds[0], -1, int32(n) + 7}, cands...), seeds[0])
		got, gotEst, err := pool.GreedyBoostAmong(k, dirty)
		if err != nil {
			t.Fatal(err)
		}
		if gotEst != wantEst || fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("trial %d: among %v/%v != default %v/%v", trial, got, gotEst, want, wantEst)
		}
		for _, v := range got {
			if pool.seedMask[v] {
				t.Fatalf("trial %d: picked seed %d", trial, v)
			}
		}
	}
}

// TestPoolGreedyMatchesNaiveParallel forces the sharded evaluation path
// (normally reserved for large batches) and re-checks equivalence with
// the naive reference.
func TestPoolGreedyMatchesNaiveParallel(t *testing.T) {
	oldEval, oldEst := ltReEvalParallelMin, estimateParallelMin
	ltReEvalParallelMin, estimateParallelMin = 1, 1
	defer func() { ltReEvalParallelMin, estimateParallelMin = oldEval, oldEst }()

	r := rng.New(55)
	for trial := 0; trial < 8; trial++ {
		g := testutil.RandomGraph(r, 15+r.Intn(15), 60+r.Intn(60), 0.5)
		pool, err := NewPool(g, []int32{0, 1}, uint64(trial)+3, 2+trial%3)
		if err != nil {
			t.Fatal(err)
		}
		pool.Extend(600)
		fast, fastEst, err := pool.GreedyBoost(3, 0)
		if err != nil {
			t.Fatal(err)
		}
		slow, slowEst, err := pool.greedyBoostNaive(3, 0)
		if err != nil {
			t.Fatal(err)
		}
		if fastEst != slowEst || fmt.Sprint(fast) != fmt.Sprint(slow) {
			t.Fatalf("trial %d: parallel %v/%v != naive %v/%v", trial, fast, fastEst, slow, slowEst)
		}
	}
}

// TestPoolEstimateMatchesNaive pins the incremental warm estimator to
// the from-scratch re-simulation of the same profiles: identical
// possible worlds must give bit-identical spreads.
func TestPoolEstimateMatchesNaive(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 10; trial++ {
		n := 10 + r.Intn(20)
		g := testutil.RandomGraph(r, n, n+r.Intn(3*n), 0.5)
		seeds := randomSeedSet(r, n)
		pool, err := NewPool(g, seeds, uint64(trial)+11, 1+trial%4)
		if err != nil {
			t.Fatal(err)
		}
		pool.Extend(400)
		for bt := 0; bt < 5; bt++ {
			boost := make([]int32, 0, 3)
			for len(boost) < 1+r.Intn(3) {
				boost = append(boost, int32(r.Intn(n)))
			}
			warm, err := pool.EstimateSpread(boost)
			if err != nil {
				t.Fatal(err)
			}
			naive := pool.estimateSpreadNaive(boost)
			if warm != naive {
				t.Fatalf("trial %d boost %v: warm %v != naive %v", trial, boost, warm, naive)
			}
		}
		// The empty boost set must reproduce the cached base spread
		// exactly, and so must the naive reference.
		empty, err := pool.EstimateSpread(nil)
		if err != nil {
			t.Fatal(err)
		}
		if empty != pool.BaseSpread() || empty != pool.estimateSpreadNaive(nil) {
			t.Fatalf("trial %d: empty-boost spread %v, base %v", trial, empty, pool.BaseSpread())
		}
	}
}

// TestPoolWorkerCountInvariance pins the contract the Engine relies on:
// pool contents, estimates and selections are bit-identical regardless
// of the worker count (profiles are seeded serially and every parallel
// phase sums integers).
func TestPoolWorkerCountInvariance(t *testing.T) {
	r := rng.New(21)
	g := testutil.RandomGraph(r, 25, 90, 0.5)
	seeds := []int32{0, 5}
	build := func(workers int) *Pool {
		pool, err := NewPool(g, seeds, 9, workers)
		if err != nil {
			t.Fatal(err)
		}
		pool.Extend(700)
		return pool
	}
	a, b := build(1), build(4)
	if a.BaseSpread() != b.BaseSpread() {
		t.Fatalf("base spread differs across workers: %v vs %v", a.BaseSpread(), b.BaseSpread())
	}
	sa, err := a.EstimateSpread([]int32{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.EstimateSpread([]int32{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sa != sb {
		t.Fatalf("estimate differs across workers: %v vs %v", sa, sb)
	}
	ca, ea, err := a.GreedyBoost(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	cb, eb, err := b.GreedyBoost(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ea != eb || fmt.Sprint(ca) != fmt.Sprint(cb) {
		t.Fatalf("selection differs across workers: %v/%v vs %v/%v", ca, ea, cb, eb)
	}
}

// TestPoolRepeatable checks that repeated warm queries on an unchanged
// pool agree with each other (per-query state must not leak into the
// shared base state or frontier index).
func TestPoolRepeatable(t *testing.T) {
	r := rng.New(7)
	g := testutil.RandomGraph(r, 20, 70, 0.5)
	pool, err := NewPool(g, []int32{0, 1}, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	pool.Extend(800)
	first, firstEst, err := pool.GreedyBoost(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	firstSpread, err := pool.EstimateSpread([]int32{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, againEst, err := pool.GreedyBoost(3, 0)
		if err != nil {
			t.Fatal(err)
		}
		if againEst != firstEst || fmt.Sprint(again) != fmt.Sprint(first) {
			t.Fatalf("warm selection %d drifted: %v/%v vs %v/%v", i, again, againEst, first, firstEst)
		}
		spread, err := pool.EstimateSpread([]int32{2, 3})
		if err != nil {
			t.Fatal(err)
		}
		if spread != firstSpread {
			t.Fatalf("warm estimate %d drifted: %v vs %v", i, spread, firstSpread)
		}
	}
}

// TestPoolGenerationAdvances pins the result-cache key contract: Extend
// that adds profiles bumps Generation; estimates and selections do not.
func TestPoolGenerationAdvances(t *testing.T) {
	r := rng.New(13)
	g := testutil.RandomGraph(r, 15, 40, 0.5)
	pool, err := NewPool(g, []int32{0}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Generation() != 0 || pool.NumProfiles() != 0 {
		t.Fatalf("fresh pool: generation %d profiles %d, want 0/0", pool.Generation(), pool.NumProfiles())
	}
	pool.Extend(200)
	gen := pool.Generation()
	if gen == 0 || pool.NumProfiles() != 200 {
		t.Fatalf("after Extend: generation %d profiles %d", gen, pool.NumProfiles())
	}
	if _, _, err := pool.GreedyBoost(2, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.EstimateSpread([]int32{1}); err != nil {
		t.Fatal(err)
	}
	if pool.Generation() != gen {
		t.Fatal("read-only queries changed the generation")
	}
	pool.Extend(100) // no-op: target below current size
	if pool.Generation() != gen {
		t.Fatal("no-op Extend bumped the generation")
	}
	if pool.MemoryEstimate() <= 0 {
		t.Fatal("memory estimate not positive for a grown pool")
	}
}

// TestPoolExtendMatchesOneShot verifies that staged growth yields the
// same profiles as generating everything in one Extend call (the
// Engine's warm-extension pattern must not change query results).
func TestPoolExtendMatchesOneShot(t *testing.T) {
	r := rng.New(41)
	g := testutil.RandomGraph(r, 20, 70, 0.5)
	staged, err := NewPool(g, []int32{0}, 17, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []int{150, 400, 650} {
		staged.Extend(target)
	}
	oneshot, err := NewPool(g, []int32{0}, 17, 3)
	if err != nil {
		t.Fatal(err)
	}
	oneshot.Extend(650)
	if staged.BaseSpread() != oneshot.BaseSpread() {
		t.Fatalf("base spread: staged %v != oneshot %v", staged.BaseSpread(), oneshot.BaseSpread())
	}
	a, ea, err := staged.GreedyBoost(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, eb, err := oneshot.GreedyBoost(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ea != eb || fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("staged selection %v/%v != oneshot %v/%v", a, ea, b, eb)
	}
}

// TestPoolValidation covers the error paths: bad nodes, empty pools,
// bad k.
func TestPoolValidation(t *testing.T) {
	g, _ := testutil.Fig1()
	if _, err := NewPool(g, []int32{-1}, 1, 1); err == nil {
		t.Fatal("bad seed accepted")
	}
	pool, err := NewPool(g, []int32{0}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.EstimateSpread(nil); err == nil {
		t.Fatal("estimate on empty pool accepted")
	}
	if _, _, err := pool.GreedyBoost(1, 0); err == nil {
		t.Fatal("selection on empty pool accepted")
	}
	pool.Extend(50)
	if _, err := pool.EstimateSpread([]int32{9}); err == nil {
		t.Fatal("bad boost node accepted")
	}
	if _, _, err := pool.GreedyBoost(0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

// TestPoolExtendTinyIncrement pins the idle-shard merge: growing a pool
// by fewer profiles than there are workers leaves trailing workers with
// no chunk (their shards stay zero-valued), which must be skipped by
// the merge — and the resulting pool must be bit-identical to a
// single-worker build, since profile seeds are drawn serially.
func TestPoolExtendTinyIncrement(t *testing.T) {
	r := rng.New(71)
	g := testutil.RandomGraph(r, 25, 90, 0.5)
	many, err := NewPool(g, []int32{0, 1}, 9, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Tiny first build, then warm in-place growth smaller than the
	// worker count — the engine's Sims-extension pattern.
	many.Extend(3)
	many.Extend(5)
	many.Extend(6)
	one, err := NewPool(g, []int32{0, 1}, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	one.Extend(6)
	if many.NumProfiles() != 6 || one.NumProfiles() != 6 {
		t.Fatalf("profiles %d/%d, want 6", many.NumProfiles(), one.NumProfiles())
	}
	if many.BaseSpread() != one.BaseSpread() {
		t.Fatalf("BaseSpread %v != single-worker %v", many.BaseSpread(), one.BaseSpread())
	}
	wantEst, err := one.EstimateSpread([]int32{2})
	if err != nil {
		t.Fatal(err)
	}
	gotEst, err := many.EstimateSpread([]int32{2})
	if err != nil {
		t.Fatal(err)
	}
	if gotEst != wantEst {
		t.Fatalf("EstimateSpread %v != single-worker %v", gotEst, wantEst)
	}
}
