package lt

import (
	"math"
	"testing"

	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/rng"
	"github.com/kboost/kboost/internal/testutil"
)

func TestWeightsNormalized(t *testing.T) {
	r := rng.New(1)
	g := testutil.RandomGraph(r, 20, 60, 0.8)
	m := New(g)
	for v := int32(0); int(v) < g.N(); v++ {
		var sumBoost float64
		for _, u := range g.InFrom(v) {
			w := m.Weight(u, v, true)
			wBase := m.Weight(u, v, false)
			if wBase > w {
				t.Fatalf("base weight %v exceeds boosted %v on (%d,%d)", wBase, w, u, v)
			}
			sumBoost += w
		}
		if sumBoost > 1+1e-9 {
			t.Fatalf("boosted in-weights of %d sum to %v > 1", v, sumBoost)
		}
	}
}

func TestWeightMissingEdge(t *testing.T) {
	g, _ := testutil.Fig1()
	m := New(g)
	if m.Weight(2, 0, false) != 0 {
		t.Fatal("missing edge has non-zero weight")
	}
}

// For a two-node graph with a single edge the LT activation probability
// equals the edge weight, exactly computable.
func TestTwoNodeExact(t *testing.T) {
	b := graph.NewBuilder(2)
	b.MustAddEdge(0, 1, 0.3, 0.6)
	g := b.MustBuild()
	plain, err := EstimateSpread(g, []int32{0}, nil, Options{Sims: 200000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// norm(1) = max(1, 0.6) = 1, so w = 0.3.
	if math.Abs(plain-(1+0.3)) > 0.01 {
		t.Fatalf("plain spread %v, want 1.3", plain)
	}
	boosted, err := EstimateSpread(g, []int32{0}, []int32{1}, Options{Sims: 200000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(boosted-(1+0.6)) > 0.01 {
		t.Fatalf("boosted spread %v, want 1.6", boosted)
	}
}

func TestSpreadBounds(t *testing.T) {
	r := rng.New(3)
	g := testutil.RandomGraph(r, 15, 40, 0.6)
	m := New(g)
	sim := NewSimulator(m)
	seeds := []int32{0, 1}
	for i := 0; i < 500; i++ {
		n := sim.SpreadOnce(seeds, nil, r)
		if n < 2 || n > g.N() {
			t.Fatalf("spread %d out of bounds", n)
		}
	}
}

func TestBoostMonotone(t *testing.T) {
	r := rng.New(4)
	g := testutil.RandomGraph(r, 15, 45, 0.7)
	seeds := []int32{0}
	small, err := EstimateSpread(g, seeds, []int32{1}, Options{Sims: 60000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	large, err := EstimateSpread(g, seeds, []int32{1, 2, 3, 4}, Options{Sims: 60000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if large+0.1 < small {
		t.Fatalf("LT spread decreased with more boosts: %v -> %v", small, large)
	}
}

func TestEstimateBoostNonNegative(t *testing.T) {
	r := rng.New(5)
	g := testutil.RandomGraph(r, 12, 30, 0.6)
	boost, err := EstimateBoost(g, []int32{0}, []int32{1, 2}, Options{Sims: 60000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if boost < -0.1 {
		t.Fatalf("LT boost strongly negative: %v", boost)
	}
}

func TestValidation(t *testing.T) {
	g, _ := testutil.Fig1()
	if _, err := EstimateSpread(g, []int32{-1}, nil, Options{Sims: 10}); err == nil {
		t.Fatal("bad seed accepted")
	}
	if _, err := EstimateSpread(g, []int32{0}, []int32{9}, Options{Sims: 10}); err == nil {
		t.Fatal("bad boost accepted")
	}
	if _, _, err := GreedyBoost(g, []int32{0}, 0, 0, Options{Sims: 10}); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestGreedyBoostPicksUseful(t *testing.T) {
	// Chain 0 -> 1 -> 2 with boost-sensitive edges: boosting 1 should be
	// chosen first (it gates the whole chain).
	b := graph.NewBuilder(3)
	b.MustAddEdge(0, 1, 0.2, 0.9)
	b.MustAddEdge(1, 2, 0.2, 0.9)
	g := b.MustBuild()
	chosen, boost, err := GreedyBoost(g, []int32{0}, 1, 2, Options{Sims: 40000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(chosen) != 1 || chosen[0] != 1 {
		t.Fatalf("greedy chose %v, want [1]", chosen)
	}
	if boost <= 0 {
		t.Fatalf("reported boost %v", boost)
	}
}

func TestDeterminism(t *testing.T) {
	r := rng.New(8)
	g := testutil.RandomGraph(r, 20, 50, 0.5)
	a, err := EstimateSpread(g, []int32{0}, []int32{1}, Options{Sims: 5000, Seed: 9, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateSpread(g, []int32{0}, []int32{1}, Options{Sims: 5000, Seed: 9, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}
