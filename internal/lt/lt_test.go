package lt

import (
	"math"
	"testing"

	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/rng"
	"github.com/kboost/kboost/internal/testutil"
)

func TestWeightsNormalized(t *testing.T) {
	r := rng.New(1)
	g := testutil.RandomGraph(r, 20, 60, 0.8)
	m := New(g)
	for v := int32(0); int(v) < g.N(); v++ {
		var sumBoost float64
		for _, u := range g.InFrom(v) {
			w := m.Weight(u, v, true)
			wBase := m.Weight(u, v, false)
			if wBase > w {
				t.Fatalf("base weight %v exceeds boosted %v on (%d,%d)", wBase, w, u, v)
			}
			sumBoost += w
		}
		if sumBoost > 1+1e-9 {
			t.Fatalf("boosted in-weights of %d sum to %v > 1", v, sumBoost)
		}
	}
}

func TestWeightMissingEdge(t *testing.T) {
	g, _ := testutil.Fig1()
	m := New(g)
	if m.Weight(2, 0, false) != 0 {
		t.Fatal("missing edge has non-zero weight")
	}
}

// For a two-node graph with a single edge the LT activation probability
// equals the edge weight, exactly computable.
func TestTwoNodeExact(t *testing.T) {
	b := graph.NewBuilder(2)
	b.MustAddEdge(0, 1, 0.3, 0.6)
	g := b.MustBuild()
	plain, err := EstimateSpread(g, []int32{0}, nil, Options{Sims: 200000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// norm(1) = max(1, 0.6) = 1, so w = 0.3.
	if math.Abs(plain-(1+0.3)) > 0.01 {
		t.Fatalf("plain spread %v, want 1.3", plain)
	}
	boosted, err := EstimateSpread(g, []int32{0}, []int32{1}, Options{Sims: 200000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(boosted-(1+0.6)) > 0.01 {
		t.Fatalf("boosted spread %v, want 1.6", boosted)
	}
}

func TestSpreadBounds(t *testing.T) {
	r := rng.New(3)
	g := testutil.RandomGraph(r, 15, 40, 0.6)
	m := New(g)
	sim := NewSimulator(m)
	seeds := []int32{0, 1}
	for i := 0; i < 500; i++ {
		n := sim.SpreadOnce(seeds, nil, r)
		if n < 2 || n > g.N() {
			t.Fatalf("spread %d out of bounds", n)
		}
	}
}

func TestBoostMonotone(t *testing.T) {
	r := rng.New(4)
	g := testutil.RandomGraph(r, 15, 45, 0.7)
	seeds := []int32{0}
	small, err := EstimateSpread(g, seeds, []int32{1}, Options{Sims: 60000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	large, err := EstimateSpread(g, seeds, []int32{1, 2, 3, 4}, Options{Sims: 60000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if large+0.1 < small {
		t.Fatalf("LT spread decreased with more boosts: %v -> %v", small, large)
	}
}

func TestEstimateBoostNonNegative(t *testing.T) {
	r := rng.New(5)
	g := testutil.RandomGraph(r, 12, 30, 0.6)
	boost, err := EstimateBoost(g, []int32{0}, []int32{1, 2}, Options{Sims: 60000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if boost < -0.1 {
		t.Fatalf("LT boost strongly negative: %v", boost)
	}
}

func TestValidation(t *testing.T) {
	g, _ := testutil.Fig1()
	if _, err := EstimateSpread(g, []int32{-1}, nil, Options{Sims: 10}); err == nil {
		t.Fatal("bad seed accepted")
	}
	if _, err := EstimateSpread(g, []int32{0}, []int32{9}, Options{Sims: 10}); err == nil {
		t.Fatal("bad boost accepted")
	}
	if _, _, err := GreedyBoost(g, []int32{0}, 0, 0, Options{Sims: 10}); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestGreedyBoostPicksUseful(t *testing.T) {
	// Chain 0 -> 1 -> 2 with boost-sensitive edges: boosting 1 should be
	// chosen first (it gates the whole chain).
	b := graph.NewBuilder(3)
	b.MustAddEdge(0, 1, 0.2, 0.9)
	b.MustAddEdge(1, 2, 0.2, 0.9)
	g := b.MustBuild()
	chosen, boost, err := GreedyBoost(g, []int32{0}, 1, 2, Options{Sims: 40000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(chosen) != 1 || chosen[0] != 1 {
		t.Fatalf("greedy chose %v, want [1]", chosen)
	}
	if boost <= 0 {
		t.Fatalf("reported boost %v", boost)
	}
}

// TestTwoNodeExactPooled is the pooled-estimator counterpart of
// TestTwoNodeExact: on a single-edge graph the LT activation
// probability equals the edge weight, so the pooled estimate must land
// on the closed form within Monte-Carlo tolerance — and the boost-on-
// seed and empty-boost edge cases must be *exact*, because they
// evaluate the same threshold profiles.
func TestTwoNodeExactPooled(t *testing.T) {
	b := graph.NewBuilder(2)
	b.MustAddEdge(0, 1, 0.3, 0.6)
	g := b.MustBuild()
	pool, err := NewPool(g, []int32{0}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	pool.Extend(200000)
	// norm(1) = max(1, 0.6) = 1, so w = 0.3 plain and 0.6 boosted.
	if got := pool.BaseSpread(); math.Abs(got-1.3) > 0.01 {
		t.Fatalf("base spread %v, want 1.3", got)
	}
	boosted, err := pool.EstimateSpread([]int32{1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(boosted-1.6) > 0.01 {
		t.Fatalf("boosted spread %v, want 1.6", boosted)
	}
	// Boosting a seed cannot change anything: same profiles, so the
	// equality is exact, not statistical.
	onSeed, err := pool.EstimateSpread([]int32{0})
	if err != nil {
		t.Fatal(err)
	}
	if onSeed != pool.BaseSpread() {
		t.Fatalf("boost-on-seed spread %v != base %v", onSeed, pool.BaseSpread())
	}
	// Same for the empty boost set, via EstimateBoost: exactly zero.
	zero, err := pool.EstimateBoost(nil)
	if err != nil {
		t.Fatal(err)
	}
	if zero != 0 {
		t.Fatalf("empty-boost Δ̂ = %v, want exactly 0", zero)
	}
}

// TestChainExactPooled checks the pooled estimator against the closed
// form on the paper's Figure 1 chain, where normalized LT weights make
// the boosted-LT spread coincide with the IC ground truth: σ(∅)=1.22,
// σ({v0})=1.44, σ({v1})=1.24, σ({v0,v1})=1.48.
func TestChainExactPooled(t *testing.T) {
	g, seeds := testutil.Fig1()
	pool, err := NewPool(g, seeds, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	pool.Extend(200000)
	for _, tc := range []struct {
		boost []int32
		want  float64
	}{
		{nil, 1.22},
		{[]int32{1}, 1.44},
		{[]int32{2}, 1.24},
		{[]int32{1, 2}, 1.48},
	} {
		got, err := pool.EstimateSpread(tc.boost)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.want) > 0.01 {
			t.Fatalf("boost %v: spread %v, want %v", tc.boost, got, tc.want)
		}
	}
}

// TestDiamondExactPooled exercises the genuinely-LT case (a node with
// two in-neighbors, where thresholds couple the two incoming weights
// instead of IC's independent coin flips) on a 4-node diamond
// 0→1, 0→2, 1→3, 2→3.
func TestDiamondExactPooled(t *testing.T) {
	b := graph.NewBuilder(4)
	b.MustAddEdge(0, 1, 0.5, 0.8)
	b.MustAddEdge(0, 2, 0.4, 0.7)
	b.MustAddEdge(1, 3, 0.3, 0.5)
	b.MustAddEdge(2, 3, 0.2, 0.4)
	g := b.MustBuild()
	// All norms are 1 (boosted in-weights sum to ≤ 0.9). With node 3
	// boosted: P(1)=0.5, P(2)=0.4 (independent thresholds), and
	// P(3) = P(1)P(2)(w13+w23) + P(1)(1−P(2))w13 + (1−P(1))P(2)w23.
	exact := func(w01, w02, w13, w23 float64) float64 {
		p3 := w01*w02*math.Min(1, w13+w23) + w01*(1-w02)*w13 + (1-w01)*w02*w23
		return 1 + w01 + w02 + p3
	}
	pool, err := NewPool(g, []int32{0}, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	pool.Extend(300000)
	if got, want := pool.BaseSpread(), exact(0.5, 0.4, 0.3, 0.2); math.Abs(got-want) > 0.01 {
		t.Fatalf("base spread %v, want %v", got, want)
	}
	got, err := pool.EstimateSpread([]int32{3})
	if err != nil {
		t.Fatal(err)
	}
	if want := exact(0.5, 0.4, 0.5, 0.4); math.Abs(got-want) > 0.01 {
		t.Fatalf("boost {3}: spread %v, want %v", got, want)
	}
	got, err = pool.EstimateSpread([]int32{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if want := exact(0.8, 0.4, 0.5, 0.4); math.Abs(got-want) > 0.01 {
		t.Fatalf("boost {1,3}: spread %v, want %v", got, want)
	}
}

// TestPoolGreedyPicksUseful mirrors TestGreedyBoostPicksUseful on the
// pooled greedy: boosting the chain's gate node must win.
func TestPoolGreedyPicksUseful(t *testing.T) {
	b := graph.NewBuilder(3)
	b.MustAddEdge(0, 1, 0.2, 0.9)
	b.MustAddEdge(1, 2, 0.2, 0.9)
	g := b.MustBuild()
	pool, err := NewPool(g, []int32{0}, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	pool.Extend(40000)
	chosen, boost, err := pool.GreedyBoost(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(chosen) != 1 || chosen[0] != 1 {
		t.Fatalf("pooled greedy chose %v, want [1]", chosen)
	}
	if boost <= 0 {
		t.Fatalf("reported boost %v", boost)
	}
}

// TestGreedyBoostSimBudget is the regression test for the hoisted base
// spread: GreedyBoost must estimate σ̂_S(∅) exactly once, not once per
// candidate evaluation. It counts Monte-Carlo simulations through the
// package counter and pins the exact budget.
func TestGreedyBoostSimBudget(t *testing.T) {
	b := graph.NewBuilder(4)
	b.MustAddEdge(0, 1, 0.2, 0.8)
	b.MustAddEdge(1, 2, 0.2, 0.8)
	b.MustAddEdge(2, 3, 0.2, 0.8)
	g := b.MustBuild()
	const sims = 2000
	start := mcSims.Load()
	if _, _, err := GreedyBoost(g, []int32{0}, 2, 3, Options{Sims: sims, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	got := mcSims.Load() - start
	// 3 candidates, k=2 rounds: 3 + 2 candidate evaluations plus ONE
	// base-spread estimate. The pre-fix code ran the base estimate
	// inside every evaluation (2 sims runs each): 10 × sims.
	const evals = 3 + 2
	if want := int64(sims * (evals + 1)); got != want {
		t.Fatalf("GreedyBoost ran %d simulations, want %d (base spread must be estimated once)", got, want)
	}
}

func TestDeterminism(t *testing.T) {
	r := rng.New(8)
	g := testutil.RandomGraph(r, 20, 50, 0.5)
	a, err := EstimateSpread(g, []int32{0}, []int32{1}, Options{Sims: 5000, Seed: 9, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateSpread(g, []int32{0}, []int32{1}, Options{Sims: 5000, Seed: 9, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}
