package lt

import (
	"fmt"
	"sync"

	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/rng"
)

// EstimateSamples runs opt.Sims boosted-LT replicates and returns the
// per-simulation boosted spread and boost delta samples (delta is all
// zeros when boost is empty). Each simulation draws from its own
// stateless stream rng.StreamSeed(opt.Seed, simIndex) — reseeding the
// stream between the boosted and base runs of one replicate, the same
// common-random-numbers coupling EstimateBoost uses — so the returned
// vectors are bit-identical for every worker count. This is the
// engine's tier-1 estimator for mode "lt"; the sample vectors feed
// stats.Summarize for confidence intervals.
func EstimateSamples(g *graph.Graph, seeds, boost []int32, opt Options) (spread, delta []float64, err error) {
	for _, v := range append(append([]int32(nil), seeds...), boost...) {
		if v < 0 || int(v) >= g.N() {
			return nil, nil, fmt.Errorf("lt: node %d out of range [0,%d)", v, g.N())
		}
	}
	opt = opt.withDefaults()
	m := New(g)
	mask := make([]bool, g.N())
	for _, v := range boost {
		mask[v] = true
	}
	spread = make([]float64, opt.Sims)
	delta = make([]float64, opt.Sims)
	pair := len(boost) > 0

	var wg sync.WaitGroup
	per := opt.Sims / opt.Workers
	rem := opt.Sims % opt.Workers
	lo := 0
	for w := 0; w < opt.Workers; w++ {
		count := per
		if w < rem {
			count++
		}
		if count == 0 {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			sim := NewSimulator(m)
			var r rng.Source
			for i := lo; i < hi; i++ {
				r.ReseedStream(opt.Seed, uint64(i))
				boosted := float64(sim.SpreadOnce(seeds, mask, &r))
				spread[i] = boosted
				if pair {
					r.ReseedStream(opt.Seed, uint64(i))
					delta[i] = boosted - float64(sim.SpreadOnce(seeds, nil, &r))
				}
			}
		}(lo, lo+count)
		lo += count
	}
	wg.Wait()
	launched := int64(opt.Sims)
	if pair {
		launched *= 2
	}
	mcSims.Add(launched)
	return spread, delta, nil
}
