package lt

// This file is the pooled greedy-selection subsystem: a CELF-style
// lazy-heap greedy over a Pool's threshold profiles, replacing the
// O(candidates × k × R) full-rescan loop of the Monte-Carlo GreedyBoost
// with exact incremental maintenance. The structure deliberately
// mirrors internal/prr's SelectDelta:
//
//   - per-candidate gains are held in an authoritative gain array and a
//     lazy max-heap whose top always dominates the true maximum (the LT
//     boost objective is not submodular, so gains may rise; every rise
//     pushes a fresh entry, which keeps the pop-validate loop exact);
//   - after a pick, only *affected* profiles are re-evaluated. A
//     profile is affected exactly when the picked node is in its
//     current frontier (its stored in-weight switches to the boosted
//     probabilities, and it may activate and cascade) or was touched by
//     one of the profile's candidate-gain cascades (those cascades can
//     now push boosted weight into it). Profiles where neither holds
//     replay bit-identically under the grown boost set, so their gains
//     are provably unchanged — the invariant the equivalence property
//     tests pin against the naive reference below;
//   - re-evaluation is sharded across the pool's workers.
//
// greedyBoostNaive — full from-scratch re-simulation of every
// (candidate, profile) pair per round — is retained as the behavioral
// reference for the equivalence tests and the warm-selection benchmark.

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/maxcover"
)

// CandidateCap resolves a candidate-pool cap against the default used
// by both greedy implementations: candCap < k falls back to 4k.
func CandidateCap(k, candCap int) int {
	if candCap < k {
		return 4 * k
	}
	return candCap
}

// boostCandidates returns the greedy candidate pool: non-seed nodes
// ordered by incoming boost gain Σ (p'−p) descending (ties toward the
// smaller id), capped at CandidateCap(k, candCap).
func boostCandidates(g *graph.Graph, seedMask []bool, k, candCap int) []int32 {
	candCap = CandidateCap(k, candCap)
	type nw struct {
		v int32
		w float64
	}
	pool := make([]nw, 0, g.N())
	for v := int32(0); int(v) < g.N(); v++ {
		if seedMask[v] {
			continue
		}
		var wsum float64
		p := g.InP(v)
		pb := g.InPBoost(v)
		for i := range p {
			wsum += pb[i] - p[i]
		}
		pool = append(pool, nw{v, wsum})
	}
	sort.Slice(pool, func(i, j int) bool {
		if pool[i].w != pool[j].w {
			return pool[i].w > pool[j].w
		}
		return pool[i].v < pool[j].v
	})
	if len(pool) > candCap {
		pool = pool[:candCap]
	}
	out := make([]int32, len(pool))
	for i, c := range pool {
		out[i] = c.v
	}
	return out
}

// gainPair is one candidate's nonzero marginal gain on one profile.
type gainPair struct {
	v int32
	g int32
}

// queryState is one profile's per-query mutable state. The slices start
// as views into the pool's base CSRs and are replaced wholesale (never
// written in place) when a pick changes the profile, so the shared pool
// is never mutated by a selection.
type queryState struct {
	active []int32 // sorted
	front  []int32 // sorted
	frontW []float64

	// touch is the sorted union of nodes touched by this profile's most
	// recent candidate-gain evaluation pass; pairs are the gains that
	// pass accumulated into the global gain array (for retraction).
	touch []int32
	pairs []gainPair
}

// profEval is one profile's re-evaluation result, produced in the
// (possibly parallel) evaluation phase and applied serially.
type profEval struct {
	delta     int32 // activations added by the applied pick
	pairs     []gainPair
	touch     []int32
	frontAdds []int32 // nodes that entered the frontier with this pick
}

// ltReEvalParallelMin is the minimum number of profiles per evaluation
// pass before it fans out to the pool's workers; a variable so tests
// can force the parallel path on small pools.
var ltReEvalParallelMin = 64

// GreedyBoost greedily selects up to k boost nodes maximizing the
// pooled LT boost estimate over the candidate pool (see
// boostCandidates; candCap < k picks the 4k default). It returns the
// chosen nodes in pick order and the pooled boost estimate Δ̂ of the
// chosen set. Selection stops early when no candidate adds activations
// in any profile. Like the underlying model it is a heuristic — no
// approximation guarantee exists for boosted LT — but it returns
// exactly what greedyBoostNaive would, bit-for-bit, at a fraction of
// the simulations. Safe to run concurrently with other read-only pool
// methods (not with Extend).
func (p *Pool) GreedyBoost(k, candCap int) ([]int32, float64, error) {
	return p.GreedyBoostContext(context.Background(), k, candCap)
}

// GreedyBoostContext is GreedyBoost with cooperative cancellation: the
// CELF pick loop polls ctx once per chosen node, so a canceled request
// stops within one profile re-evaluation round.
func (p *Pool) GreedyBoostContext(ctx context.Context, k, candCap int) ([]int32, float64, error) {
	if err := p.checkSelect(k); err != nil {
		return nil, 0, err
	}
	return p.greedyBoost(ctx, k, boostCandidates(p.g, p.seedMask, k, candCap))
}

// GreedyBoostAmong is GreedyBoost over an explicit candidate list
// instead of the in-weight-ranked default pool: only listed non-seed
// nodes may be picked. Callers (the engine's tier-0 pre-filter) supply
// a shortlist from a cheap closed-form ranking; out-of-range ids and
// seeds are ignored.
func (p *Pool) GreedyBoostAmong(k int, cands []int32) ([]int32, float64, error) {
	return p.GreedyBoostAmongContext(context.Background(), k, cands)
}

// GreedyBoostAmongContext is GreedyBoostAmong with cooperative
// cancellation (see GreedyBoostContext).
func (p *Pool) GreedyBoostAmongContext(ctx context.Context, k int, cands []int32) ([]int32, float64, error) {
	if err := p.checkSelect(k); err != nil {
		return nil, 0, err
	}
	ok := make([]int32, 0, len(cands))
	for _, v := range cands {
		if v >= 0 && int(v) < p.g.N() && !p.seedMask[v] {
			ok = append(ok, v)
		}
	}
	return p.greedyBoost(ctx, k, ok)
}

// checkSelect validates a selection request against the pool.
func (p *Pool) checkSelect(k int) error {
	if k < 1 {
		return fmt.Errorf("lt: k=%d must be >= 1", k)
	}
	if len(p.profileSeed) == 0 {
		return fmt.Errorf("lt: selection on an empty pool (call Extend first)")
	}
	return nil
}

// greedyBoost is the shared CELF implementation over a resolved
// candidate list.
func (p *Pool) greedyBoost(ctx context.Context, k int, cands []int32) ([]int32, float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	R := len(p.profileSeed)
	n := p.g.N()
	candMask := make([]bool, n)
	for _, v := range cands {
		candMask[v] = true
	}
	chosenMask := make([]bool, n)

	states := make([]queryState, R)
	for pi := range states {
		states[pi] = queryState{
			active: p.baseActive(pi),
			front:  p.baseFront(pi),
			frontW: p.baseFrontW(pi),
		}
	}

	gain := make([]int32, n)
	// extra holds query-local inverted-index additions: profiles whose
	// touch set or grown frontier came to include a node after the base
	// index was built. Entries may be stale or duplicated — the affected
	// filter re-checks membership — so appends never need dedup here.
	extra := make([][]int32, n)
	evals := make([]profEval, R)

	// Initial evaluation pass: every profile's candidate gains.
	all := make([]int32, R)
	for i := range all {
		all[i] = int32(i)
	}
	p.evalProfilesInto(all, states, -1, chosenMask, candMask, evals)
	curSum := p.baseSum
	for _, pi := range all {
		st := &states[pi]
		st.pairs, st.touch = evals[pi].pairs, evals[pi].touch
		for _, pr := range st.pairs {
			gain[pr.v] += pr.g
		}
		for _, t := range st.touch {
			extra[t] = append(extra[t], pi)
		}
	}

	// Lazy max-heap with the same exactness contract as prr.SelectDelta:
	// gain[] is authoritative, stale entries are reinserted at the
	// current value, and every gain rise pushes a fresh entry so the
	// heap top always bounds the true maximum.
	h := make(maxcover.Heap, 0, len(cands))
	for _, v := range cands {
		if gain[v] > 0 {
			h = append(h, maxcover.Entry{Item: v, Gain: gain[v]})
		}
	}
	h.Init()

	var chosen []int32
	var affected []int32
	var bumped []int32
	bumpStamp := make([]int32, n)
	profStamp := make([]int32, R)
	round := int32(0)

	for len(chosen) < k && h.Len() > 0 {
		top := h.PopMax()
		if chosenMask[top.Item] {
			continue
		}
		if top.Gain != gain[top.Item] {
			h.PushEntry(maxcover.Entry{Item: top.Item, Gain: gain[top.Item]})
			continue
		}
		if top.Gain == 0 {
			break
		}
		// One poll per pick: the profile re-evaluation below dominates a
		// round, so this bounds cancellation latency to one round while
		// costing nothing measurable on the warm path.
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		best := top.Item
		chosen = append(chosen, best)
		chosenMask[best] = true
		round++

		// Affected profiles: best in the current frontier or in the last
		// eval pass's touch set. The base index plus the extra appends
		// form a superset; membership is re-checked before inclusion.
		affected = affected[:0]
		for _, src := range [2][]int32{p.frontierProfiles(best), extra[best]} {
			for _, pi := range src {
				if profStamp[pi] == round {
					continue
				}
				profStamp[pi] = round
				st := &states[pi]
				if containsSorted(st.front, best) || containsSorted(st.touch, best) {
					affected = append(affected, pi)
				}
			}
		}
		sort.Slice(affected, func(i, j int) bool { return affected[i] < affected[j] })

		p.evalProfilesInto(affected, states, best, chosenMask, candMask, evals)

		// Serial apply: retract the affected profiles' old gains, install
		// the new state, and push fresh heap entries for raised gains.
		bumped = bumped[:0]
		for _, pi := range affected {
			st := &states[pi]
			for _, pr := range st.pairs {
				gain[pr.v] -= pr.g
			}
			ev := &evals[pi]
			curSum += int64(ev.delta)
			st.pairs, st.touch = ev.pairs, ev.touch
			for _, pr := range st.pairs {
				gain[pr.v] += pr.g
				if bumpStamp[pr.v] != round {
					bumpStamp[pr.v] = round
					bumped = append(bumped, pr.v)
				}
			}
			for _, t := range st.touch {
				extra[t] = append(extra[t], pi)
			}
			for _, t := range ev.frontAdds {
				extra[t] = append(extra[t], pi)
			}
		}
		for _, v := range bumped {
			if gain[v] > 0 && !chosenMask[v] {
				h.PushEntry(maxcover.Entry{Item: v, Gain: gain[v]})
			}
		}
	}
	return chosen, float64(curSum-p.baseSum) / float64(R), nil
}

// containsSorted reports whether v is in the sorted slice s.
func containsSorted(s []int32, v int32) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	return i < len(s) && s[i] == v
}

// evalProfilesInto runs evalProfile for each listed profile, sharded
// across the pool's workers when the batch is large enough, writing
// results into evals[pi]. Profiles are independent, and each result is
// a pure function of (profile state, pick, masks), so the output does
// not depend on the sharding.
func (p *Pool) evalProfilesInto(pis []int32, states []queryState, pick int32, chosenMask, candMask []bool, evals []profEval) {
	if len(pis) < ltReEvalParallelMin || p.workers <= 1 {
		s := p.getScratch()
		defer p.putScratch(s)
		for _, pi := range pis {
			evals[pi] = p.evalProfile(int(pi), &states[pi], pick, chosenMask, candMask, s)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (len(pis) + p.workers - 1) / p.workers
	for w := 0; w < p.workers; w++ {
		lo := w * chunk
		if lo >= len(pis) {
			break
		}
		hi := lo + chunk
		if hi > len(pis) {
			hi = len(pis)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			s := p.getScratch()
			defer p.putScratch(s)
			for _, pi := range pis[lo:hi] {
				evals[pi] = p.evalProfile(int(pi), &states[pi], pick, chosenMask, candMask, s)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// evalProfile applies pick (if >= 0) to one profile's query state and
// recomputes the profile's candidate gains and touch set. It mutates
// st's slices by replacement only; the scratch is left clean.
func (p *Pool) evalProfile(pi int, st *queryState, pick int32, chosenMask, candMask []bool, s *evalScratch) profEval {
	ps := p.profileSeed[pi]
	s.loadState(st.active, st.front, st.frontW)
	var ev profEval

	if pick >= 0 && !s.active[pick] {
		// The picked node's stored in-weight switches to the boosted
		// probabilities; if that reaches its threshold, it activates and
		// cascades. Modifications stay in the logs for the rebuild below.
		wb := p.boostedInWeight(pick, s)
		s.pushNode = append(s.pushNode, pick)
		s.pushPrev = append(s.pushPrev, s.wIn[pick])
		s.wIn[pick] = wb
		if wb >= theta(ps, pick) {
			s.active[pick] = true
			s.actNode = append(s.actNode, pick)
			s.queue = append(s.queue, pick)
			ev.delta = int32(1 + p.runCascade(ps, chosenMask, s))
		}
		p.commitState(st, &ev, s)
	}

	// Candidate gains over the (possibly rebuilt) frontier, collecting
	// the union of nodes the tentative cascades touch.
	s.bumpTouchEpoch()
	for _, v := range st.front {
		if !candMask[v] || chosenMask[v] || s.active[v] {
			continue
		}
		g := p.gainOf(ps, v, chosenMask, s, &ev.touch)
		if g > 0 {
			ev.pairs = append(ev.pairs, gainPair{v, g})
		}
	}
	sort.Slice(ev.touch, func(i, j int) bool { return ev.touch[i] < ev.touch[j] })
	s.reset()
	return ev
}

// gainOf evaluates one candidate's marginal activations on the loaded
// profile state: recompute its in-weight under the boosted
// probabilities, tentatively activate and cascade if it reaches its
// threshold, then roll the state back. Touched nodes are appended to
// touch (deduplicated by the caller's tepoch).
func (p *Pool) gainOf(ps uint64, v int32, inB []bool, s *evalScratch, touch *[]int32) int32 {
	w := p.boostedInWeight(v, s)
	if w < theta(ps, v) {
		return 0
	}
	pushMark, actMark := len(s.pushNode), len(s.actNode)
	s.active[v] = true
	s.actNode = append(s.actNode, v)
	s.queue = append(s.queue, v)
	g := int32(1 + p.runCascade(ps, inB, s))
	for _, t := range s.pushNode[pushMark:] {
		if s.tstamp[t] != s.tepoch {
			s.tstamp[t] = s.tepoch
			*touch = append(*touch, t)
		}
	}
	for _, t := range s.actNode[actMark:] {
		if s.tstamp[t] != s.tepoch {
			s.tstamp[t] = s.tepoch
			*touch = append(*touch, t)
		}
	}
	s.rollback(pushMark, actMark)
	return g
}

// commitState rebuilds st's active set and frontier from the scratch
// modification logs after an applied pick, recording nodes that entered
// the frontier in ev.frontAdds. The scratch keeps the committed state
// loaded so candidate gains can be evaluated directly afterwards.
func (p *Pool) commitState(st *queryState, ev *profEval, s *evalScratch) {
	newActs := s.actNode
	if len(newActs) > 0 {
		merged := make([]int32, 0, len(st.active)+len(newActs))
		merged = append(merged, st.active...)
		merged = append(merged, newActs...)
		sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
		st.active = merged
	}

	// New frontier: old frontier members plus push targets, minus
	// activations, with weights read off the scratch.
	s.bumpTouchEpoch()
	oldFront := st.front
	var front []int32
	for _, v := range oldFront {
		s.tstamp[v] = s.tepoch
		if !s.active[v] {
			front = append(front, v)
		}
	}
	for _, v := range s.pushNode {
		if s.tstamp[v] == s.tepoch || s.active[v] {
			continue
		}
		s.tstamp[v] = s.tepoch
		front = append(front, v)
		ev.frontAdds = append(ev.frontAdds, v)
	}
	sort.Slice(front, func(i, j int) bool { return front[i] < front[j] })
	frontW := make([]float64, len(front))
	for j, v := range front {
		frontW[j] = s.wIn[v]
	}
	st.front, st.frontW = front, frontW
}

// greedyBoostNaive is the retained reference implementation: each round
// it re-simulates every profile from scratch for every remaining
// candidate and takes the best (ties toward the smaller node id,
// stopping when no candidate adds activations) — exactly the semantics
// GreedyBoost reproduces incrementally. The equivalence property tests
// and BenchmarkLTWarmBoost run it against the fast path.
func (p *Pool) greedyBoostNaive(k, candCap int) ([]int32, float64, error) {
	if k < 1 {
		return nil, 0, fmt.Errorf("lt: k=%d must be >= 1", k)
	}
	R := len(p.profileSeed)
	if R == 0 {
		return nil, 0, fmt.Errorf("lt: selection on an empty pool (call Extend first)")
	}
	cands := append([]int32(nil), boostCandidates(p.g, p.seedMask, k, candCap)...)
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })

	s := p.getScratch()
	defer p.putScratch(s)
	mask := make([]bool, p.g.N())
	curSum := p.baseSum
	var chosen []int32
	for len(chosen) < k {
		best := int32(-1)
		bestSum := curSum
		for _, v := range cands {
			if mask[v] {
				continue
			}
			mask[v] = true
			var sum int64
			for pi := range p.profileSeed {
				sum += int64(p.simulate(p.profileSeed[pi], mask, s))
				s.reset()
			}
			mask[v] = false
			if sum > bestSum {
				best, bestSum = v, sum
			}
		}
		if best < 0 {
			break
		}
		chosen = append(chosen, best)
		mask[best] = true
		curSum = bestSum
	}
	return chosen, float64(curSum-p.baseSum) / float64(R), nil
}
