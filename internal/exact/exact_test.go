package exact

import (
	"math"
	"testing"

	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/rng"
	"github.com/kboost/kboost/internal/testutil"
)

func rngSource(seed uint64) *rng.Source { return rng.New(seed) }

func TestFig1Exact(t *testing.T) {
	g, seeds := testutil.Fig1()
	cases := []struct {
		boost []int32
		want  float64
	}{
		{nil, 1.22},
		{[]int32{1}, 1.44},
		{[]int32{2}, 1.24},
		{[]int32{1, 2}, 1.48},
	}
	for _, c := range cases {
		got, err := Spread(g, seeds, c.boost)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("σ_S(%v) = %v, want %v", c.boost, got, c.want)
		}
	}
}

func TestFig1BoostExact(t *testing.T) {
	g, seeds := testutil.Fig1()
	got, err := Boost(g, seeds, []int32{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.26) > 1e-12 {
		t.Fatalf("Δ = %v, want 0.26", got)
	}
}

func TestActivationSeedsAreOne(t *testing.T) {
	g, seeds := testutil.Fig1()
	probs, err := Activation(g, seeds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if probs[0] != 1 {
		t.Fatalf("seed activation %v, want 1", probs[0])
	}
	if math.Abs(probs[1]-0.2) > 1e-12 || math.Abs(probs[2]-0.02) > 1e-12 {
		t.Fatalf("activations %v", probs)
	}
}

func TestDeterministicEdges(t *testing.T) {
	// A chain with p=1 everywhere: everything is always activated.
	b := graph.NewBuilder(4)
	b.MustAddEdge(0, 1, 1, 1)
	b.MustAddEdge(1, 2, 1, 1)
	b.MustAddEdge(2, 3, 1, 1)
	g := b.MustBuild()
	got, err := Spread(g, []int32{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4) > 1e-12 {
		t.Fatalf("spread %v, want 4", got)
	}
}

func TestBlockedEdges(t *testing.T) {
	// p = p' = 0: influence never crosses.
	b := graph.NewBuilder(2)
	b.MustAddEdge(0, 1, 0, 0)
	g := b.MustBuild()
	got, err := Spread(g, []int32{0}, []int32{1})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("spread %v, want 1", got)
	}
}

func TestBoostOnlyEdge(t *testing.T) {
	// p=0, p'=1: crossing iff the target is boosted.
	b := graph.NewBuilder(2)
	b.MustAddEdge(0, 1, 0, 1)
	g := b.MustBuild()
	plain, err := Spread(g, []int32{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	boosted, err := Spread(g, []int32{0}, []int32{1})
	if err != nil {
		t.Fatal(err)
	}
	if plain != 1 || boosted != 2 {
		t.Fatalf("plain=%v boosted=%v, want 1 and 2", plain, boosted)
	}
}

func TestDiamondIndependence(t *testing.T) {
	// 0 -> {1,2} -> 3 with p=0.5 everywhere: P(3 active) =
	// E over worlds; compute by hand: P(1)=P(2)=0.5 independent;
	// P(3 | a of {1,2} active) = 1-(0.5)^a.
	b := graph.NewBuilder(4)
	b.MustAddEdge(0, 1, 0.5, 0.5)
	b.MustAddEdge(0, 2, 0.5, 0.5)
	b.MustAddEdge(1, 3, 0.5, 0.5)
	b.MustAddEdge(2, 3, 0.5, 0.5)
	g := b.MustBuild()
	probs, err := Activation(g, []int32{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// P(3) = sum over a in {0,1,2}: C(2,a) 0.25 * (1-0.5^a)
	want := 0.25*0 + 0.5*0.5 + 0.25*0.75
	if math.Abs(probs[3]-want) > 1e-12 {
		t.Fatalf("P(3) = %v, want %v", probs[3], want)
	}
}

func TestEdgeLimit(t *testing.T) {
	b := graph.NewBuilder(20)
	for i := int32(0); i < 18; i++ {
		b.MustAddEdge(i, i+1, 0.5, 0.6)
	}
	g := b.MustBuild()
	if _, err := Spread(g, []int32{0}, nil); err == nil {
		t.Fatal("graph above MaxEdges accepted")
	}
}

func TestInputValidation(t *testing.T) {
	g, _ := testutil.Fig1()
	if _, err := Spread(g, []int32{-1}, nil); err == nil {
		t.Fatal("bad seed accepted")
	}
	if _, err := Spread(g, []int32{0}, []int32{77}); err == nil {
		t.Fatal("bad boost node accepted")
	}
}

func TestProbabilitiesSumConsistency(t *testing.T) {
	// Activation probabilities of all worlds weight to 1: the seed's
	// activation probability is exactly 1 regardless of structure.
	g := testutil.RandomGraph(rngSource(5), 6, 9, 0.9)
	probs, err := Activation(g, []int32{2}, []int32{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(probs[2]-1) > 1e-9 {
		t.Fatalf("seed activation %v", probs[2])
	}
	for v, p := range probs {
		if p < -1e-12 || p > 1+1e-12 {
			t.Fatalf("activation[%d] = %v out of [0,1]", v, p)
		}
	}
}
