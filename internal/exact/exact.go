// Package exact computes exact boosted influence spreads by enumerating
// possible worlds. It is exponential in the number of edges and exists
// purely as ground truth for tests of the Monte-Carlo simulator, the
// PRR-graph estimator, and the tree algorithms.
//
// Under the influence boosting model every edge independently lands in
// one of three states: live (probability p), live-upon-boost
// (probability p'−p), or blocked (probability 1−p'). The boosted spread
// σ_S(B) is the expectation over worlds of the number of nodes reachable
// from S over edges that are live or are live-upon-boost into a boosted
// node.
package exact

import (
	"fmt"

	"github.com/kboost/kboost/internal/graph"
)

// MaxEdges bounds the number of edges the enumerator accepts: 3^MaxEdges
// worlds are enumerated in the worst case.
const MaxEdges = 16

// Spread returns the exact σ_S(B). boost may be nil.
func Spread(g *graph.Graph, seeds, boost []int32) (float64, error) {
	probs, err := Activation(g, seeds, boost)
	if err != nil {
		return 0, err
	}
	var total float64
	for _, p := range probs {
		total += p
	}
	return total, nil
}

// Boost returns the exact Δ_S(B) = σ_S(B) − σ_S(∅).
func Boost(g *graph.Graph, seeds, boost []int32) (float64, error) {
	with, err := Spread(g, seeds, boost)
	if err != nil {
		return 0, err
	}
	without, err := Spread(g, seeds, nil)
	if err != nil {
		return 0, err
	}
	return with - without, nil
}

// Activation returns the exact per-node activation probabilities under
// seeds and boost.
func Activation(g *graph.Graph, seeds, boost []int32) ([]float64, error) {
	m := g.M()
	if m > MaxEdges {
		return nil, fmt.Errorf("exact: graph has %d edges; enumeration supports at most %d", m, MaxEdges)
	}
	for _, v := range seeds {
		if v < 0 || int(v) >= g.N() {
			return nil, fmt.Errorf("exact: seed %d out of range", v)
		}
	}
	mask := make([]bool, g.N())
	for _, v := range boost {
		if v < 0 || int(v) >= g.N() {
			return nil, fmt.Errorf("exact: boost node %d out of range", v)
		}
		mask[v] = true
	}

	edges := g.Edges()
	state := make([]uint8, m) // 0=live, 1=boost-only, 2=blocked
	probs := make([]float64, g.N())
	reach := make([]bool, g.N())
	queue := make([]int32, 0, g.N())

	// adjacency: for world evaluation we need out-edges with their index.
	var rec func(i int, weight float64)
	rec = func(i int, weight float64) {
		if weight == 0 {
			return
		}
		if i == m {
			// Evaluate the world: BFS over effective edges.
			for v := range reach {
				reach[v] = false
			}
			queue = queue[:0]
			for _, v := range seeds {
				if !reach[v] {
					reach[v] = true
					queue = append(queue, v)
				}
			}
			for qi := 0; qi < len(queue); qi++ {
				u := queue[qi]
				for ei, e := range edges {
					if e.From != u || reach[e.To] {
						continue
					}
					if state[ei] == 0 || (state[ei] == 1 && mask[e.To]) {
						reach[e.To] = true
						queue = append(queue, e.To)
					}
				}
			}
			for v := range reach {
				if reach[v] {
					probs[v] += weight
				}
			}
			return
		}
		e := edges[i]
		state[i] = 0
		rec(i+1, weight*e.P)
		state[i] = 1
		rec(i+1, weight*(e.PBoost-e.P))
		state[i] = 2
		rec(i+1, weight*(1-e.PBoost))
	}
	rec(0, 1)
	return probs, nil
}
