// Package texttab renders aligned text tables for the experiment
// harness: every table and figure of the paper is reproduced as rows of
// named columns printed in a fixed-width layout, easy to diff across
// runs and to paste into EXPERIMENTS.md.
package texttab

import (
	"fmt"
	"io"
	"strings"
)

// Table is an ordered collection of rows with a fixed header.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// New returns a Table with the given title and column names.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; values are formatted with %v, floats with %.4g.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		case float32:
			row[i] = fmt.Sprintf("%.4g", x)
		case string:
			row[i] = x
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.Rows) }

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// RenderCSV writes the table as RFC-4180-ish CSV (header row first; the
// title is not emitted). Cells containing commas or quotes are quoted.
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
