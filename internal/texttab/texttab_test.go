package texttab

import (
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tb := New("demo", "name", "value")
	tb.AddRow("a", 1)
	tb.AddRow("longer", 2.5)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "== demo ==") {
		t.Fatalf("missing title: %q", lines[0])
	}
	if !strings.Contains(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Fatalf("bad header: %q", lines[1])
	}
	// Columns align: "value" starts at the same offset in header and rows.
	off := strings.Index(lines[1], "value")
	if lines[3][off-2:off] != "  " && lines[3][off] == ' ' {
		t.Fatalf("row misaligned:\n%s", out)
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := New("", "x")
	tb.AddRow(1.23456789)
	tb.AddRow(float32(2.5))
	out := tb.String()
	if !strings.Contains(out, "1.235") {
		t.Fatalf("float64 not compacted: %s", out)
	}
	if !strings.Contains(out, "2.5") {
		t.Fatalf("float32 missing: %s", out)
	}
}

func TestNoTitle(t *testing.T) {
	tb := New("", "a")
	tb.AddRow("x")
	if strings.Contains(tb.String(), "==") {
		t.Fatal("unexpected title marker")
	}
}

func TestNumRows(t *testing.T) {
	tb := New("t", "a")
	if tb.NumRows() != 0 {
		t.Fatal("empty table has rows")
	}
	tb.AddRow(1)
	tb.AddRow(2)
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestRenderCSV(t *testing.T) {
	tb := New("ignored title", "a", "b")
	tb.AddRow("plain", 1.5)
	tb.AddRow(`quo"te`, "with,comma")
	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "a,b\nplain,1.5\n\"quo\"\"te\",\"with,comma\"\n"
	if got != want {
		t.Fatalf("CSV:\n%q\nwant\n%q", got, want)
	}
	if strings.Contains(got, "ignored title") {
		t.Fatal("title leaked into CSV")
	}
}

func TestMixedTypes(t *testing.T) {
	tb := New("t", "a", "b", "c", "d")
	tb.AddRow("s", 42, 3.14, true)
	out := tb.String()
	for _, want := range []string{"s", "42", "3.14", "true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in %s", want, out)
		}
	}
}
