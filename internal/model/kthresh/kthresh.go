// Package kthresh implements boosted k-threshold complex contagion
// behind the generic model.Pool contract.
//
// Dynamics: each edge (u, v) is independently "live" with its base
// probability p, or — when v is boosted — additionally usable with the
// boosted probability p' ≥ p under the same draw (the repo's standard
// target-side boost semantics and monotone coupling). A non-seed node
// activates once at least τ of its in-edges are both usable and
// originate at active nodes; τ is the model's threshold knob, uniform
// across nodes. τ = 1 degenerates to independent-cascade percolation;
// τ ≥ 2 is complex contagion — a single exposure never converts, which
// is why the engine's closed-form tier-0 estimator declines this model.
//
// Activation is a monotone closure (the least fixed point of the
// exposure-count rule), so a profile — one assignment of edge uniforms
// U(u, v) — is a static possible world evaluated by chaotic iteration:
// the final active set is independent of traversal order and worker
// count. Edge uniforms are pure hashes of (profile seed, tail, head),
// never a consumed RNG stream, so worlds are shared across boost sets
// (common random numbers) and every pooled estimate is bit-exact.
package kthresh

// DefaultThreshold is the activation threshold selected by a zero knob.
const DefaultThreshold = 2

// Model holds the k-threshold parameter τ.
type Model struct {
	thresh int32
}

// New returns a Model with activation threshold τ; 0 selects
// DefaultThreshold. Callers validate τ >= 1 (internal/model does for
// the engine path).
func New(threshold int) *Model {
	if threshold == 0 {
		threshold = DefaultThreshold
	}
	return &Model{thresh: int32(threshold)}
}

// Threshold returns the model's activation threshold.
func (m *Model) Threshold() int { return int(m.thresh) }

// mix64 is the splitmix64 finalizer: a bijective avalanche mix, the
// same hash core lt's threshold draw uses.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// edgeU returns U(u, v) ∈ [0, 1): the liveness uniform of edge (u, v)
// in the profile seeded by ps. Keyed by the node-id pair, not an edge
// index, so the out-CSR cascade and the in-CSR frontier scan see the
// same draw for the same edge.
func edgeU(ps uint64, u, v int32) float64 {
	x := ps ^ (uint64(uint32(u))+1)*0x9e3779b97f4a7c15 ^ (uint64(uint32(v))+1)*0x94d049bb133111eb
	return float64(mix64(x)>>11) * (1.0 / (1 << 53))
}
