package kthresh

import (
	"fmt"
	"testing"

	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/rng"
	"github.com/kboost/kboost/internal/testutil"
)

// randomSeedSet draws 1-3 distinct seed nodes.
func randomSeedSet(r *rng.Source, n int) []int32 {
	numSeeds := 1 + r.Intn(3)
	seeds := make([]int32, 0, numSeeds)
	for len(seeds) < numSeeds {
		s := int32(r.Intn(n))
		dup := false
		for _, prev := range seeds {
			dup = dup || prev == s
		}
		if !dup {
			seeds = append(seeds, s)
		}
	}
	return seeds
}

// thresholds samples the knob across its range, including τ = 1 (the
// percolation degenerate case) and τ = 3 (deep complex contagion).
var thresholds = []int{1, 2, 3}

// TestThresholdSemantics pins the contagion rule on a deterministic
// graph (all probabilities 0 or 1): at τ = 2 a node with one active
// live in-neighbor stays inactive, with two it activates, and a
// boost-only edge counts exactly when the target is boosted.
func TestThresholdSemantics(t *testing.T) {
	b := graph.NewBuilder(4)
	b.MustAddEdge(0, 2, 1, 1) // always live
	b.MustAddEdge(1, 2, 0, 1) // usable only when 2 is boosted
	b.MustAddEdge(2, 3, 1, 1) // always live, but 3 needs 2 exposures
	m := New(2)
	pool, err := m.NewPool(b.MustBuild(), []int32{0, 1}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	pool.Extend(10)
	if got := pool.BaseSpread(); got != 2 {
		t.Fatalf("base spread %v, want 2 (one live exposure is below τ=2)", got)
	}
	boosted, err := pool.EstimateSpread([]int32{2})
	if err != nil {
		t.Fatal(err)
	}
	if boosted != 3 {
		t.Fatalf("boosted spread %v, want 3 (boost-only edge completes 2's threshold; 3 still has one exposure)", boosted)
	}
	if naive := pool.estimateSpreadNaive([]int32{2}); naive != boosted {
		t.Fatalf("incremental %v != naive %v", boosted, naive)
	}
}

// TestPoolEstimateMatchesNaive pins the incremental warm estimator to
// the from-scratch re-simulation of the same percolation profiles:
// identical possible worlds must give bit-identical spreads, and the
// coupled boost delta must never be negative (monotone coupling).
func TestPoolEstimateMatchesNaive(t *testing.T) {
	r := rng.New(177)
	for trial := 0; trial < 12; trial++ {
		n := 10 + r.Intn(20)
		g := testutil.RandomGraph(r, n, 2*n+r.Intn(4*n), 0.7)
		seeds := randomSeedSet(r, n)
		m := New(thresholds[trial%len(thresholds)])
		pool, err := m.NewPool(g, seeds, uint64(trial)+11, 1+trial%4)
		if err != nil {
			t.Fatal(err)
		}
		pool.Extend(400)
		for bt := 0; bt < 5; bt++ {
			boost := make([]int32, 0, 3)
			for len(boost) < 1+r.Intn(3) {
				boost = append(boost, int32(r.Intn(n)))
			}
			warm, err := pool.EstimateSpread(boost)
			if err != nil {
				t.Fatal(err)
			}
			naive := pool.estimateSpreadNaive(boost)
			if warm != naive {
				t.Fatalf("trial %d τ=%d boost %v: warm %v != naive %v", trial, m.Threshold(), boost, warm, naive)
			}
			delta, err := pool.EstimateBoost(boost)
			if err != nil {
				t.Fatal(err)
			}
			if delta < 0 {
				t.Fatalf("trial %d boost %v: negative coupled delta %v", trial, boost, delta)
			}
		}
		empty, err := pool.EstimateSpread(nil)
		if err != nil {
			t.Fatal(err)
		}
		if empty != pool.BaseSpread() || empty != pool.estimateSpreadNaive(nil) {
			t.Fatalf("trial %d: empty-boost spread %v, base %v", trial, empty, pool.BaseSpread())
		}
	}
}

// TestPoolGreedyMatchesNaive is the equivalence property test for the
// pooled selection subsystem: across random pools, thresholds, k values
// and interleaved growth, the frontier-indexed GreedyBoost must return
// exactly the picks and estimate of the retained full-resimulation
// reference.
func TestPoolGreedyMatchesNaive(t *testing.T) {
	r := rng.New(199)
	for trial := 0; trial < 12; trial++ {
		n := 10 + r.Intn(25)
		g := testutil.RandomGraph(r, n, 2*n+r.Intn(4*n), 0.7)
		seeds := randomSeedSet(r, n)
		m := New(thresholds[trial%len(thresholds)])
		pool, err := m.NewPool(g, seeds, uint64(trial)+1, 1+trial%3)
		if err != nil {
			t.Fatal(err)
		}
		target := 0
		for stage := 0; stage < 2; stage++ {
			target += 100 + r.Intn(300)
			pool.Extend(target)
			for _, k := range []int{1, 3} {
				candCap := k + r.Intn(2*k)
				fast, fastEst, err := pool.GreedyBoost(k, candCap)
				if err != nil {
					t.Fatal(err)
				}
				slow, slowEst, err := pool.greedyBoostNaive(k, candCap)
				if err != nil {
					t.Fatal(err)
				}
				if fastEst != slowEst || fmt.Sprint(fast) != fmt.Sprint(slow) {
					t.Fatalf("trial %d stage %d τ=%d k=%d cap=%d: incremental %v/%v != naive %v/%v",
						trial, stage, m.Threshold(), k, candCap, fast, fastEst, slow, slowEst)
				}
			}
		}
	}
}

// TestPoolGreedyMatchesNaiveParallel forces the sharded estimate and
// candidate-evaluation paths (normally reserved for large batches) and
// re-checks equivalence with the naive reference.
func TestPoolGreedyMatchesNaiveParallel(t *testing.T) {
	oldSel, oldEst := selectParallelMin, estimateParallelMin
	selectParallelMin, estimateParallelMin = 1, 1
	defer func() { selectParallelMin, estimateParallelMin = oldSel, oldEst }()

	r := rng.New(155)
	for trial := 0; trial < 6; trial++ {
		g := testutil.RandomGraph(r, 15+r.Intn(15), 80+r.Intn(60), 0.7)
		m := New(thresholds[trial%len(thresholds)])
		pool, err := m.NewPool(g, []int32{0, 1}, uint64(trial)+3, 2+trial%3)
		if err != nil {
			t.Fatal(err)
		}
		pool.Extend(500)
		fast, fastEst, err := pool.GreedyBoost(3, 0)
		if err != nil {
			t.Fatal(err)
		}
		slow, slowEst, err := pool.greedyBoostNaive(3, 0)
		if err != nil {
			t.Fatal(err)
		}
		if fastEst != slowEst || fmt.Sprint(fast) != fmt.Sprint(slow) {
			t.Fatalf("trial %d: parallel %v/%v != naive %v/%v", trial, fast, fastEst, slow, slowEst)
		}
	}
}

// TestGreedyBoostAmongMatchesDefault pins the explicit-candidate
// variant's contract: handed the default ranking's own list it is
// exactly GreedyBoost, and seeds or out-of-range ids in the list are
// ignored rather than selectable.
func TestGreedyBoostAmongMatchesDefault(t *testing.T) {
	r := rng.New(141)
	for trial := 0; trial < 6; trial++ {
		n := 12 + r.Intn(20)
		g := testutil.RandomGraph(r, n, 2*n+r.Intn(3*n), 0.7)
		seeds := randomSeedSet(r, n)
		pool, err := New(2).NewPool(g, seeds, uint64(trial)+5, 2)
		if err != nil {
			t.Fatal(err)
		}
		pool.Extend(300)
		k, candCap := 3, 6
		want, wantEst, err := pool.GreedyBoost(k, candCap)
		if err != nil {
			t.Fatal(err)
		}
		cands := boostCandidates(g, pool.seedMask, candidateCap(k, candCap))
		dirty := append(append([]int32{seeds[0], -1, int32(n) + 7}, cands...), seeds[0])
		got, gotEst, err := pool.GreedyBoostAmong(k, dirty)
		if err != nil {
			t.Fatal(err)
		}
		if gotEst != wantEst || fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("trial %d: among %v/%v != default %v/%v", trial, got, gotEst, want, wantEst)
		}
		for _, v := range got {
			if pool.seedMask[v] {
				t.Fatalf("trial %d: picked seed %d", trial, v)
			}
		}
	}
}

// TestPoolWorkerCountInvariance pins the contract the Engine relies on:
// pool contents, estimates and selections are bit-identical across
// worker counts 1, 2 and 7.
func TestPoolWorkerCountInvariance(t *testing.T) {
	r := rng.New(121)
	g := testutil.RandomGraph(r, 25, 120, 0.7)
	seeds := []int32{0, 5}
	m := New(2)
	type result struct {
		base, est float64
		picks     string
		pickEst   float64
	}
	run := func(workers int) result {
		pool, err := m.NewPool(g, seeds, 9, workers)
		if err != nil {
			t.Fatal(err)
		}
		pool.Extend(700)
		est, err := pool.EstimateSpread([]int32{1, 2})
		if err != nil {
			t.Fatal(err)
		}
		picks, pickEst, err := pool.GreedyBoost(3, 0)
		if err != nil {
			t.Fatal(err)
		}
		return result{pool.BaseSpread(), est, fmt.Sprint(picks), pickEst}
	}
	want := run(1)
	for _, workers := range []int{2, 7} {
		if got := run(workers); got != want {
			t.Fatalf("workers=%d: %+v != single-worker %+v", workers, got, want)
		}
	}
}

// TestPoolExtendMatchesOneShot verifies that staged growth yields the
// same profiles as generating everything in one Extend call, including
// increments smaller than the worker count (idle trailing shards).
func TestPoolExtendMatchesOneShot(t *testing.T) {
	r := rng.New(141)
	g := testutil.RandomGraph(r, 20, 90, 0.7)
	m := New(2)
	staged, err := m.NewPool(g, []int32{0}, 17, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []int{3, 150, 400, 650} {
		staged.Extend(target)
	}
	oneshot, err := m.NewPool(g, []int32{0}, 17, 3)
	if err != nil {
		t.Fatal(err)
	}
	oneshot.Extend(650)
	if staged.BaseSpread() != oneshot.BaseSpread() {
		t.Fatalf("base spread: staged %v != oneshot %v", staged.BaseSpread(), oneshot.BaseSpread())
	}
	a, ea, err := staged.GreedyBoost(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, eb, err := oneshot.GreedyBoost(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ea != eb || fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("staged selection %v/%v != oneshot %v/%v", a, ea, b, eb)
	}
}

// TestPoolGenerationAdvances pins the result-cache key contract: Extend
// that adds profiles bumps Generation; estimates and selections do not.
func TestPoolGenerationAdvances(t *testing.T) {
	r := rng.New(113)
	g := testutil.RandomGraph(r, 15, 60, 0.7)
	pool, err := New(2).NewPool(g, []int32{0}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Generation() != 0 || pool.NumProfiles() != 0 {
		t.Fatalf("fresh pool: generation %d profiles %d, want 0/0", pool.Generation(), pool.NumProfiles())
	}
	pool.Extend(200)
	gen := pool.Generation()
	if gen == 0 || pool.NumProfiles() != 200 {
		t.Fatalf("after Extend: generation %d profiles %d", gen, pool.NumProfiles())
	}
	if _, _, err := pool.GreedyBoost(2, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.EstimateSpread([]int32{1}); err != nil {
		t.Fatal(err)
	}
	if pool.Generation() != gen {
		t.Fatal("read-only queries changed the generation")
	}
	pool.Extend(100) // no-op: target below current size
	if pool.Generation() != gen {
		t.Fatal("no-op Extend bumped the generation")
	}
	if pool.MemoryEstimate() <= 0 {
		t.Fatal("memory estimate not positive for a grown pool")
	}
}

// TestPoolValidation covers the error paths: bad nodes, empty pools,
// bad k.
func TestPoolValidation(t *testing.T) {
	g, _ := testutil.Fig1()
	m := New(2)
	if _, err := m.NewPool(g, []int32{-1}, 1, 1); err == nil {
		t.Fatal("bad seed accepted")
	}
	pool, err := m.NewPool(g, []int32{0}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.EstimateSpread(nil); err == nil {
		t.Fatal("estimate on empty pool accepted")
	}
	if _, _, err := pool.GreedyBoost(1, 0); err == nil {
		t.Fatal("selection on empty pool accepted")
	}
	pool.Extend(50)
	if _, err := pool.EstimateSpread([]int32{9}); err == nil {
		t.Fatal("bad boost node accepted")
	}
	if _, _, err := pool.GreedyBoost(0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

// TestEstimateSamplesWorkerInvariance pins the tier-1 contract: the
// sample vectors are bit-identical across worker counts 1, 2 and 7, and
// the coupled deltas are never negative.
func TestEstimateSamplesWorkerInvariance(t *testing.T) {
	r := rng.New(131)
	g := testutil.RandomGraph(r, 30, 150, 0.7)
	m := New(2)
	seeds, boost := []int32{0, 3}, []int32{5, 9}
	wantS, wantD, err := m.EstimateSamples(g, seeds, boost, 200, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 7} {
		gotS, gotD, err := m.EstimateSamples(g, seeds, boost, 200, 42, workers)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(gotS) != fmt.Sprint(wantS) || fmt.Sprint(gotD) != fmt.Sprint(wantD) {
			t.Fatalf("workers=%d: samples differ from single-worker run", workers)
		}
	}
	for i, d := range wantD {
		if d < 0 {
			t.Fatalf("sim %d: negative coupled delta %v", i, d)
		}
	}
	_, zeroD, err := m.EstimateSamples(g, seeds, nil, 50, 42, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range zeroD {
		if d != 0 {
			t.Fatalf("sim %d: empty boost produced delta %v", i, d)
		}
	}
}
