package kthresh

// This file is the pooled Monte-Carlo evaluation subsystem for boosted
// k-threshold contagion, structured like internal/lt's threshold-
// profile pool. A Pool holds R pre-sampled edge-percolation profiles
// together with each profile's cached base-world state: the active set
// under B = ∅, and the frontier — every inactive node with at least one
// usable in-edge from a base-active node — storing two exposure counts
// per frontier node: live (edges usable unboosted) and boost-only
// (edges usable only if the node is boosted). Boosting only adds usable
// edges, counts only grow, and activation is monotone in the counts, so
// a boosted world's active set always contains the base world's and
// warm queries evaluate boost sets incrementally from the cached
// counts.

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/kboost/kboost/internal/faults"
	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/panicsafe"
	"github.com/kboost/kboost/internal/rng"
)

// cancelStride is the amortized cooperative-cancellation poll interval
// inside shard simulation loops (see internal/prr): one ctx check per
// 64 profiles.
const cancelStride = 64

// Pool is a growable collection of boosted k-threshold percolation
// profiles for a fixed (graph, seed set). Profiles are independent of
// the boost budget k, so one pool serves every query against its seed
// set. Mutation (Extend) must be externally serialized against
// everything else; estimation and selection only read the pool and may
// run concurrently with each other.
type Pool struct {
	m        *Model
	g        *graph.Graph
	seeds    []int32 // sorted, deduplicated
	seedMask []bool
	workers  int
	root     *rng.Source

	// profileSeed[i] seeds the edge-uniform hash of profile i. Seeds
	// are drawn serially from root, so pool contents are independent of
	// the worker count.
	profileSeed []uint64

	// Base-world state per profile, stored flat (CSR-style): the active
	// set at quiescence under B = ∅, and the frontier — touched but
	// inactive nodes — with their live and boost-only exposure counts
	// from base-active in-neighbors (the k-threshold analogue of lt's
	// accumulated frontier in-weights). Node lists are sorted per
	// profile so membership tests are binary searches.
	activeStart []int32
	activeItems []int32
	frontStart  []int32
	frontItems  []int32
	frontLive   []int32
	frontBoost  []int32

	// baseSum is Σ_i |active_i|: the base spread numerator.
	baseSum int64

	// idxStart/idxItems: node -> profiles whose base frontier contains
	// it. A boost set can only change profiles where at least one
	// boosted node sits in the base frontier (a node with zero cached
	// exposures cannot activate in phase 1, and without a phase-1
	// activation nothing cascades), so estimates and greedy rounds
	// iterate these posting lists instead of all R profiles.
	idxStart []int32
	idxItems []int32

	// generation counts Extend calls that added profiles; estimates and
	// selections are pure functions of the pool contents, so callers may
	// cache results keyed by (generation, query) and invalidate on
	// change.
	generation uint64

	scratch sync.Pool // of *evalScratch
}

// Norms returns nil: k-threshold ranks boost candidates on raw edge
// probabilities (activation counts exposures; there is no per-node
// weight normalization).
func (p *Pool) Norms() []float64 { return nil }

// NewPool creates an empty pool for (g, seeds). seed determines every
// profile the pool will ever contain; workers <= 0 means GOMAXPROCS.
// Pool contents do not depend on workers.
func (m *Model) NewPool(g *graph.Graph, seeds []int32, seed uint64, workers int) (*Pool, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	for _, v := range seeds {
		if v < 0 || int(v) >= g.N() {
			return nil, fmt.Errorf("kthresh: seed %d out of range [0,%d)", v, g.N())
		}
	}
	p := &Pool{
		m:           m,
		g:           g,
		seedMask:    make([]bool, g.N()),
		workers:     workers,
		root:        rng.New(seed),
		activeStart: []int32{0},
		frontStart:  []int32{0},
		idxStart:    make([]int32, g.N()+1),
	}
	for _, v := range seeds {
		if !p.seedMask[v] {
			p.seedMask[v] = true
			p.seeds = append(p.seeds, v)
		}
	}
	slices.Sort(p.seeds)
	p.scratch.New = func() interface{} { return newEvalScratch(g.N()) }
	return p, nil
}

// NumProfiles returns the number of sampled percolation profiles.
func (p *Pool) NumProfiles() int { return len(p.profileSeed) }

// Generation identifies the pool's contents: it increments on every
// Extend call that adds profiles.
func (p *Pool) Generation() uint64 { return p.generation }

// BaseSpread returns the pooled estimate of the unboosted spread σ̂(∅),
// cached from the base fixed points.
func (p *Pool) BaseSpread() float64 {
	if len(p.profileSeed) == 0 {
		return 0
	}
	return float64(p.baseSum) / float64(len(p.profileSeed))
}

// MemoryEstimate returns the pool's resident bytes: the flat profile
// CSRs with their exposure counts, the inverted index and the profile
// seeds — exact array lengths × element sizes, matching the accounting
// the other pool families report so the engine's byte-based eviction
// compares them fairly.
func (p *Pool) MemoryEstimate() int64 {
	bytes := int64(len(p.activeItems)+len(p.frontItems)+len(p.frontLive)+len(p.frontBoost)+len(p.idxItems)) * 4
	bytes += int64(len(p.profileSeed)) * 8
	bytes += int64(len(p.activeStart)+len(p.frontStart)+len(p.idxStart)) * 4
	return bytes
}

// evalScratch is the reusable per-worker state for profile evaluation:
// dense arrays addressed by node id, cleaned after each profile via the
// load and modification logs so reuse is O(touched), not O(n).
type evalScratch struct {
	active []bool
	cnt    []int32 // usable exposures from active nodes, under evaluation
	bcnt   []int32 // boost-only exposures (base-world capture only)
	queue  []int32

	loadedAct []int32 // nodes whose active flag was set by loadState
	actNode   []int32 // every activation since load, in order
	cntNode   []int32 // unique nodes whose cnt/bcnt were written

	tstamp []int32 // cnt-touch dedup stamps
	tepoch int32   // kboost:epoch
}

// bumpTouchEpoch advances the touch stamp, clearing the stamp array
// when the int32 epoch wraps so stale stamps can never read as current.
// kboost:epoch-helper
func (s *evalScratch) bumpTouchEpoch() {
	if s.tepoch == math.MaxInt32 {
		clear(s.tstamp)
		s.tepoch = 0
	}
	s.tepoch++
}

func newEvalScratch(n int) *evalScratch {
	return &evalScratch{
		active: make([]bool, n),
		cnt:    make([]int32, n),
		bcnt:   make([]int32, n),
		tstamp: make([]int32, n),
	}
}

func (p *Pool) getScratch() *evalScratch  { return p.scratch.Get().(*evalScratch) }
func (p *Pool) putScratch(s *evalScratch) { p.scratch.Put(s) }

// markTouched logs the first cnt/bcnt write to t in this evaluation so
// reset can clear it.
func (s *evalScratch) markTouched(t int32) {
	if s.tstamp[t] != s.tepoch {
		s.tstamp[t] = s.tepoch
		s.cntNode = append(s.cntNode, t)
	}
}

// reset clears every node the scratch touched since the last load.
func (s *evalScratch) reset() {
	for _, v := range s.loadedAct {
		s.active[v] = false
	}
	for _, v := range s.actNode {
		s.active[v] = false
	}
	for _, v := range s.cntNode {
		s.cnt[v] = 0
		s.bcnt[v] = 0
	}
	s.loadedAct = s.loadedAct[:0]
	s.actNode = s.actNode[:0]
	s.cntNode = s.cntNode[:0]
	s.queue = s.queue[:0]
}

// loadState installs a profile's base state into the scratch: the
// active set and every frontier node's cached live exposure count.
// (Boost-only counts are folded in per boosted node by the caller's
// phase 1.) Starts a fresh touch epoch.
func (s *evalScratch) loadState(active, front, frontLive []int32) {
	s.bumpTouchEpoch()
	for _, u := range active {
		s.active[u] = true
	}
	s.loadedAct = append(s.loadedAct, active...)
	for j, v := range front {
		s.markTouched(v)
		s.cnt[v] = frontLive[j]
	}
}

// runCascade drains s.queue: each newly active node u pushes its
// out-edges' exposures into inactive targets. An edge counts when its
// uniform falls below the base probability, or — for targets in the
// boost set (mask membership or the tentative candidate extra) — below
// the boosted probability. A target activates when its usable exposure
// count reaches the model threshold. With collect set (base-world
// simulation), boost-only exposures of unboosted targets accumulate in
// bcnt for frontier extraction instead. Returns the number of
// activations (excluding nodes queued by the caller).
func (p *Pool) runCascade(ps uint64, mask []bool, extra int32, collect bool, s *evalScratch) int {
	g := p.g
	activated := 0
	for qi := 0; qi < len(s.queue); qi++ {
		u := s.queue[qi]
		to := g.OutTo(u)
		pp := g.OutP(u)
		pb := g.OutPBoost(u)
		for i, t := range to {
			if s.active[t] {
				continue
			}
			uu := edgeU(ps, u, t)
			if uu >= pp[i] {
				// Not live; usable only as a boost-only edge.
				boosted := (mask != nil && mask[t]) || t == extra
				if boosted {
					if uu >= pb[i] {
						continue
					}
				} else {
					if collect && uu < pb[i] {
						s.markTouched(t)
						s.bcnt[t]++
					}
					continue
				}
			}
			s.markTouched(t)
			s.cnt[t]++
			if s.cnt[t] >= p.m.thresh {
				s.active[t] = true
				s.actNode = append(s.actNode, t)
				s.queue = append(s.queue, t)
				activated++
			}
		}
	}
	s.queue = s.queue[:0]
	return activated
}

// simulate runs one full fixed point from an empty scratch: seeds
// activate unconditionally, then the cascade runs under the boost mask.
// It returns the active count and leaves the final state in s (caller
// extracts what it needs, then resets).
func (p *Pool) simulate(ps uint64, mask []bool, collect bool, s *evalScratch) int {
	s.bumpTouchEpoch()
	for _, v := range p.seeds {
		s.active[v] = true
		s.actNode = append(s.actNode, v)
		s.queue = append(s.queue, v)
	}
	return len(p.seeds) + p.runCascade(ps, mask, -1, collect, s)
}

// baseActive / baseFront / baseFrontLive / baseFrontBoost / baseCount
// are CSR views of one profile's cached base-world state.
func (p *Pool) baseActive(pi int) []int32 {
	return p.activeItems[p.activeStart[pi]:p.activeStart[pi+1]]
}
func (p *Pool) baseFront(pi int) []int32 {
	return p.frontItems[p.frontStart[pi]:p.frontStart[pi+1]]
}
func (p *Pool) baseFrontLive(pi int) []int32 {
	return p.frontLive[p.frontStart[pi]:p.frontStart[pi+1]]
}
func (p *Pool) baseFrontBoost(pi int) []int32 {
	return p.frontBoost[p.frontStart[pi]:p.frontStart[pi+1]]
}
func (p *Pool) baseCount(pi int) int32 {
	return p.activeStart[pi+1] - p.activeStart[pi]
}

// frontierProfiles returns the profiles whose base frontier contains v.
func (p *Pool) frontierProfiles(v int32) []int32 {
	return p.idxItems[p.idxStart[v]:p.idxStart[v+1]]
}

// ktShard is one worker's private Extend output: the base-world state
// of a contiguous run of profiles, stored flat exactly like the pool's
// arrays (local CSR offsets starting at 0). Shards cover ascending
// profile ranges and are merged in range order with bulk appends, so
// pool contents stay independent of scheduling.
type ktShard struct {
	activeStart []int32 // len = profiles+1
	activeItems []int32
	frontStart  []int32 // len = profiles+1
	frontItems  []int32
	frontLive   []int32
	frontBoost  []int32
}

// Extend grows the pool to at least target profiles. Growth is
// incremental: existing profiles and their cached fixed points are
// untouched, only the shortfall is simulated (sharded across the pool's
// workers, merged in profile order), and the frontier index is merged
// in one pass.
func (p *Pool) Extend(target int) {
	// Ctx-less compat form; without a cancelable ctx or armed faults the
	// context variant cannot fail.
	_ = p.ExtendContext(context.Background(), target)
}

// ExtendContext is Extend with cooperative cancellation and shard-worker
// panic containment. On any error — ctx canceled, injected fault, or a
// worker panic (returned as *panicsafe.Error) — no shard is merged and
// the pool rolls back to its exact pre-call state: the appended profile
// seeds are truncated and the root RNG restored, so a retried call
// draws the same seeds again and the final pool is bit-identical to one
// built without interruption.
func (p *Pool) ExtendContext(ctx context.Context, target int) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	need := target - len(p.profileSeed)
	if need <= 0 {
		return nil
	}
	from := len(p.profileSeed)
	savedRoot := *p.root // for rollback: Uint64 draws below advance it
	for i := 0; i < need; i++ {
		p.profileSeed = append(p.profileSeed, p.root.Uint64())
	}
	shards := make([]ktShard, p.workers)
	var wg sync.WaitGroup
	var stop atomic.Bool // flipped on first failure so sibling shards bail early
	errs := make([]error, p.workers)
	chunk := (need + p.workers - 1) / p.workers
	for w := 0; w < p.workers; w++ {
		lo := w * chunk
		if lo >= need {
			break
		}
		hi := lo + chunk
		if hi > need {
			hi = need
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			err := panicsafe.Do(func() {
				if e := faults.CheckContext(ctx, faults.PoolBuildShard); e != nil {
					errs[w] = e
					stop.Store(true)
					return
				}
				s := p.getScratch()
				defer p.putScratch(s)
				sh := &shards[w]
				sh.activeStart = append(sh.activeStart, 0)
				sh.frontStart = append(sh.frontStart, 0)
				for i := lo; i < hi; i++ {
					if (i-lo)%cancelStride == 0 && (stop.Load() || ctx.Err() != nil) {
						errs[w] = ctx.Err()
						stop.Store(true)
						return
					}
					p.simulateBaseInto(p.profileSeed[from+i], sh, s)
				}
			})
			if err != nil {
				errs[w] = err
				stop.Store(true)
			}
		}(w, lo, hi)
	}
	wg.Wait()
	abort := ctx.Err()
	for _, err := range errs {
		if err != nil {
			abort = err
			break
		}
	}
	if abort != nil {
		p.profileSeed = p.profileSeed[:from]
		*p.root = savedRoot
		return abort
	}

	// Merge the shards in profile order: bulk-append the flat state,
	// shifting the local CSR offsets. Trailing workers get no profiles
	// when need is smaller than their chunk offset; their shards stay
	// zero-valued and are skipped.
	for w := range shards {
		sh := &shards[w]
		if len(sh.activeStart) == 0 {
			continue
		}
		activeBase := int32(len(p.activeItems))
		frontBase := int32(len(p.frontItems))
		p.activeItems = append(p.activeItems, sh.activeItems...)
		p.frontItems = append(p.frontItems, sh.frontItems...)
		p.frontLive = append(p.frontLive, sh.frontLive...)
		p.frontBoost = append(p.frontBoost, sh.frontBoost...)
		for _, end := range sh.activeStart[1:] {
			p.activeStart = append(p.activeStart, activeBase+end)
		}
		for _, end := range sh.frontStart[1:] {
			p.frontStart = append(p.frontStart, frontBase+end)
		}
		p.baseSum += int64(len(sh.activeItems))
	}

	// Merge the frontier index: count the batch contribution per node,
	// then interleave old and new posting lists in one O(old+new) pass.
	n := p.g.N()
	counts := make([]int32, n)
	for w := range shards {
		for _, v := range shards[w].frontItems {
			counts[v]++
		}
	}
	newStart := make([]int32, n+1)
	for v := 0; v < n; v++ {
		newStart[v+1] = newStart[v] + (p.idxStart[v+1] - p.idxStart[v]) + counts[v]
	}
	newItems := make([]int32, newStart[n])
	next := counts // reuse as per-node write cursors
	for v := 0; v < n; v++ {
		old := p.idxItems[p.idxStart[v]:p.idxStart[v+1]]
		copy(newItems[newStart[v]:], old)
		next[v] = newStart[v] + int32(len(old))
	}
	for pi := from; pi < len(p.profileSeed); pi++ {
		for _, v := range p.baseFront(pi) {
			newItems[next[v]] = int32(pi)
			next[v]++
		}
	}
	p.idxStart, p.idxItems = newStart, newItems
	p.generation++
	return nil
}

// simulateBaseInto runs one profile's base world (B = ∅) and appends
// its cached state to sh: sorted active set, sorted frontier with live
// and boost-only exposure counts.
func (p *Pool) simulateBaseInto(ps uint64, sh *ktShard, s *evalScratch) {
	p.simulate(ps, nil, true, s)
	activeOff := len(sh.activeItems)
	sh.activeItems = append(sh.activeItems, s.actNode...)
	active := sh.activeItems[activeOff:]
	slices.Sort(active)
	sh.activeStart = append(sh.activeStart, int32(len(sh.activeItems)))
	frontOff := len(sh.frontItems)
	for _, v := range s.cntNode {
		if !s.active[v] {
			sh.frontItems = append(sh.frontItems, v)
		}
	}
	front := sh.frontItems[frontOff:]
	slices.Sort(front)
	for _, v := range front {
		sh.frontLive = append(sh.frontLive, s.cnt[v])
		sh.frontBoost = append(sh.frontBoost, s.bcnt[v])
	}
	sh.frontStart = append(sh.frontStart, int32(len(sh.frontItems)))
	s.reset()
}

// estimateParallelMin is the minimum number of affected profiles before
// batch estimation fans out to the pool's workers; a variable so tests
// can force the parallel path on small pools.
var estimateParallelMin = 256

// EstimateSpread returns the pooled estimate of the boosted k-threshold
// spread σ̂(B) by incrementally evaluating boost from every affected
// profile's cached base fixed point. It is deterministic for a fixed
// pool generation, bit-exact across worker counts, and shares its
// possible worlds with every other estimate from the same pool (common
// random numbers).
func (p *Pool) EstimateSpread(boost []int32) (float64, error) {
	total, err := p.estimateCount(boost)
	if err != nil {
		return 0, err
	}
	return float64(total) / float64(len(p.profileSeed)), nil
}

// EstimateBoost returns the pooled estimate of the boost
// Δ̂_S(B) = σ̂(B) − σ̂(∅). Both terms are evaluated on the same
// percolation profiles, so the difference is coupled, exactly zero for
// an empty or ineffective boost set, and — because the activation sums
// are differenced as integers before dividing — bit-identical to the
// estimate GreedyBoost reports for the same boost set.
func (p *Pool) EstimateBoost(boost []int32) (float64, error) {
	total, err := p.estimateCount(boost)
	if err != nil {
		return 0, err
	}
	return float64(total-p.baseSum) / float64(len(p.profileSeed)), nil
}

// estimateCount returns Σ_i |active_i(B)|, the integer numerator of the
// pooled spread estimate: the cached base sum plus the incremental
// deltas of the profiles whose frontier intersects the boost set (no
// other profile can change — see idxStart).
func (p *Pool) estimateCount(boost []int32) (int64, error) {
	R := len(p.profileSeed)
	if R == 0 {
		return 0, fmt.Errorf("kthresh: estimate on an empty pool (call Extend first)")
	}
	mask := make([]bool, p.g.N())
	for _, v := range boost {
		if v < 0 || int(v) >= p.g.N() {
			return 0, fmt.Errorf("kthresh: boost node %d out of range [0,%d)", v, p.g.N())
		}
		mask[v] = true
	}
	// Dense boost list (deduplicated, sorted) for the per-profile pass.
	var bset []int32
	for v := int32(0); int(v) < p.g.N(); v++ {
		if mask[v] {
			bset = append(bset, v)
		}
	}
	profs := p.mergeFrontierProfiles(nil, bset)
	return p.baseSum + p.sumDeltas(profs, bset, mask, -1), nil
}

// mergeFrontierProfiles returns the sorted, deduplicated union of base
// (already sorted ascending) and the posting lists of each node in
// vs — the profiles a boost over base's owners plus vs could change.
func (p *Pool) mergeFrontierProfiles(base []int32, vs []int32) []int32 {
	lists := make([][]int32, 0, len(vs)+1)
	if len(base) > 0 {
		lists = append(lists, base)
	}
	for _, v := range vs {
		if pl := p.frontierProfiles(v); len(pl) > 0 {
			lists = append(lists, pl)
		}
	}
	return mergeSorted(lists)
}

// mergeSorted merges sorted int32 lists into a sorted, deduplicated
// union. The posting lists are short relative to R, so a simple k-way
// min scan is enough.
func mergeSorted(lists [][]int32) []int32 {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return lists[0]
	}
	var out []int32
	cur := make([]int, len(lists))
	for {
		best := int32(math.MaxInt32)
		found := false
		for li, l := range lists {
			if cur[li] < len(l) && l[cur[li]] < best {
				best = l[cur[li]]
				found = true
			}
		}
		if !found {
			return out
		}
		out = append(out, best)
		for li, l := range lists {
			for cur[li] < len(l) && l[cur[li]] == best {
				cur[li]++
			}
		}
	}
}

// sumDeltas evaluates the boost set incrementally on each listed
// profile and returns the summed activation deltas, fanning out to the
// pool's workers for large batches. Deltas are integers summed in any
// order, so the result does not depend on the sharding.
func (p *Pool) sumDeltas(profs []int32, bset []int32, mask []bool, extra int32) int64 {
	evalChunk := func(lo, hi int, s *evalScratch) int64 {
		var sum int64
		for _, pi := range profs[lo:hi] {
			sum += int64(p.evalBoostSet(int(pi), bset, mask, extra, s))
		}
		return sum
	}
	if len(profs) < estimateParallelMin || p.workers <= 1 {
		s := p.getScratch()
		defer p.putScratch(s)
		return evalChunk(0, len(profs), s)
	}
	sums := make([]int64, p.workers)
	var wg sync.WaitGroup
	chunk := (len(profs) + p.workers - 1) / p.workers
	for w := 0; w < p.workers; w++ {
		lo := w * chunk
		if lo >= len(profs) {
			break
		}
		hi := lo + chunk
		if hi > len(profs) {
			hi = len(profs)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			s := p.getScratch()
			defer p.putScratch(s)
			sums[w] = evalChunk(lo, hi, s)
		}(w, lo, hi)
	}
	wg.Wait()
	var total int64
	for _, v := range sums {
		total += v
	}
	return total
}

// evalBoostSet computes the marginal activations of boosting
// bset ∪ {extra} on profile pi, starting from the cached base fixed
// point. Phase 1 folds each inactive boosted node's cached boost-only
// exposures into its count (the contributions of base-active
// in-neighbors, which the cascade will not replay) and activates those
// at threshold; phase 2 cascades from the activated nodes. The scratch
// is left clean.
func (p *Pool) evalBoostSet(pi int, bset []int32, mask []bool, extra int32, s *evalScratch) int {
	ps := p.profileSeed[pi]
	front := p.baseFront(pi)
	s.loadState(p.baseActive(pi), front, p.baseFrontLive(pi))
	frontBoost := p.baseFrontBoost(pi)
	delta := 0
	install := func(b int32) {
		if s.active[b] {
			return
		}
		j := sort.Search(len(front), func(i int) bool { return front[i] >= b })
		if j >= len(front) || front[j] != b {
			return
		}
		s.cnt[b] += frontBoost[j]
		if s.cnt[b] >= p.m.thresh {
			s.active[b] = true
			s.actNode = append(s.actNode, b)
			s.queue = append(s.queue, b)
			delta++
		}
	}
	for _, b := range bset {
		install(b)
	}
	if extra >= 0 {
		install(extra)
	}
	delta += p.runCascade(ps, mask, extra, false, s)
	s.reset()
	return delta
}

// estimateSpreadNaive re-simulates every profile from scratch under the
// boost mask — the retained reference implementation the property tests
// hold EstimateSpread to.
func (p *Pool) estimateSpreadNaive(boost []int32) float64 {
	mask := make([]bool, p.g.N())
	for _, v := range boost {
		mask[v] = true
	}
	s := p.getScratch()
	defer p.putScratch(s)
	var sum int64
	for pi := range p.profileSeed {
		sum += int64(p.simulate(p.profileSeed[pi], mask, false, s))
		s.reset()
	}
	return float64(sum) / float64(len(p.profileSeed))
}
