package kthresh

// Pooled greedy boost selection for k-threshold contagion: the same
// exhaustive greedy over frontier-index posting lists as model/sir. A
// candidate's delta is nonzero only in profiles where some member of
// (chosen ∪ {candidate}) sits in the base frontier, so each round
// evaluates every candidate over the merged posting lists — typically a
// small fraction of R — instead of all profiles. Candidates are
// evaluated in parallel (each goroutine owns a scratch, gains land in a
// per-candidate slot) and the argmax is applied serially, so results
// are bit-identical for every worker count and to the retained
// full-resimulation reference greedyBoostNaive.

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"github.com/kboost/kboost/internal/graph"
)

// boostCandidates returns the greedy candidate pool: non-seed nodes
// ordered by incoming boost gain Σ (p'−p) descending (ties toward the
// smaller id), capped at candCap (already resolved by the caller) — the
// repo-wide raw-uplift ranking, a natural proxy for added exposures.
func boostCandidates(g *graph.Graph, seedMask []bool, candCap int) []int32 {
	type nw struct {
		v int32
		w float64
	}
	pool := make([]nw, 0, g.N())
	for v := int32(0); int(v) < g.N(); v++ {
		if seedMask[v] {
			continue
		}
		var wsum float64
		p := g.InP(v)
		pb := g.InPBoost(v)
		for i := range p {
			wsum += pb[i] - p[i]
		}
		pool = append(pool, nw{v, wsum})
	}
	sort.Slice(pool, func(i, j int) bool {
		if pool[i].w != pool[j].w {
			return pool[i].w > pool[j].w
		}
		return pool[i].v < pool[j].v
	})
	if len(pool) > candCap {
		pool = pool[:candCap]
	}
	out := make([]int32, len(pool))
	for i, c := range pool {
		out[i] = c.v
	}
	return out
}

// candidateCap resolves the candidate-pool cap: candCap < k falls back
// to the repo-wide 4k default.
func candidateCap(k, candCap int) int {
	if candCap < k {
		return 4 * k
	}
	return candCap
}

// GreedyBoost greedily selects up to k boost nodes maximizing the
// pooled k-threshold boost estimate over the candidate pool (candCap <
// k picks the 4k default). It returns the chosen nodes in pick order
// and the pooled boost estimate Δ̂ of the chosen set. Selection stops
// early when no candidate adds activations in any profile. Like the
// other boosted models it is a heuristic without an approximation
// guarantee, but it returns exactly what greedyBoostNaive would,
// bit-for-bit, at a fraction of the simulations. Safe to run
// concurrently with other read-only pool methods (not with Extend).
func (p *Pool) GreedyBoost(k, candCap int) ([]int32, float64, error) {
	return p.GreedyBoostContext(context.Background(), k, candCap)
}

// GreedyBoostContext is GreedyBoost with cooperative cancellation: the
// greedy pick loop polls ctx once per round, so a canceled request
// stops within one gain-evaluation sweep.
func (p *Pool) GreedyBoostContext(ctx context.Context, k, candCap int) ([]int32, float64, error) {
	if err := p.checkSelect(k); err != nil {
		return nil, 0, err
	}
	return p.greedyBoost(ctx, k, boostCandidates(p.g, p.seedMask, candidateCap(k, candCap)))
}

// GreedyBoostAmong is GreedyBoost over an explicit candidate list
// instead of the uplift-ranked default pool: only listed non-seed nodes
// may be picked. Callers (the engine's tier-0 pre-filter) supply a
// shortlist from a cheap closed-form ranking; out-of-range ids and
// seeds are ignored.
func (p *Pool) GreedyBoostAmong(k int, cands []int32) ([]int32, float64, error) {
	return p.GreedyBoostAmongContext(context.Background(), k, cands)
}

// GreedyBoostAmongContext is GreedyBoostAmong with cooperative
// cancellation (see GreedyBoostContext).
func (p *Pool) GreedyBoostAmongContext(ctx context.Context, k int, cands []int32) ([]int32, float64, error) {
	if err := p.checkSelect(k); err != nil {
		return nil, 0, err
	}
	ok := make([]int32, 0, len(cands))
	for _, v := range cands {
		if v >= 0 && int(v) < p.g.N() && !p.seedMask[v] {
			ok = append(ok, v)
		}
	}
	return p.greedyBoost(ctx, k, ok)
}

// checkSelect validates a selection request against the pool.
func (p *Pool) checkSelect(k int) error {
	if k < 1 {
		return fmt.Errorf("kthresh: k=%d must be >= 1", k)
	}
	if len(p.profileSeed) == 0 {
		return fmt.Errorf("kthresh: selection on an empty pool (call Extend first)")
	}
	return nil
}

// selectParallelMin is the minimum number of candidates per greedy
// round before gain evaluation fans out to the pool's workers; a
// variable so tests can force the parallel path on small pools.
var selectParallelMin = 16

// greedyBoost is the exhaustive greedy over a resolved candidate list.
func (p *Pool) greedyBoost(ctx context.Context, k int, cands []int32) ([]int32, float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	R := len(p.profileSeed)
	chosenMask := make([]bool, p.g.N())
	var chosen []int32
	var profsChosen []int32 // sorted union of chosen's posting lists
	var curDelta int64      // Σ_profiles delta(chosen), integer-exact
	gains := make([]int64, len(cands))

	for len(chosen) < k {
		// One poll per round: evalGains dominates a round, so this
		// bounds cancellation latency to one sweep while costing
		// nothing measurable on the warm path.
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		p.evalGains(cands, chosen, chosenMask, profsChosen, curDelta, gains)
		best := int32(-1)
		var bestGain int64
		for ci, c := range cands {
			if chosenMask[c] {
				continue
			}
			if g := gains[ci]; g > 0 && (g > bestGain || (g == bestGain && c < best)) {
				best, bestGain = c, g
			}
		}
		if best < 0 {
			break
		}
		chosen = append(chosen, best)
		chosenMask[best] = true
		curDelta += bestGain
		profsChosen = p.mergeFrontierProfiles(profsChosen, []int32{best})
	}
	return chosen, float64(curDelta) / float64(R), nil
}

// evalGains fills gains[ci] with candidate cands[ci]'s marginal delta
// over the current chosen set: Σ delta(chosen ∪ {c}) over the merged
// posting lists, minus the chosen set's own delta. Each candidate is a
// pure function of (pool, chosen, candidate), so the parallel fan-out
// cannot change results.
func (p *Pool) evalGains(cands, chosen []int32, chosenMask []bool, profsChosen []int32, curDelta int64, gains []int64) {
	evalRange := func(lo, hi int, s *evalScratch) {
		for ci := lo; ci < hi; ci++ {
			c := cands[ci]
			if chosenMask[c] {
				gains[ci] = 0
				continue
			}
			profs := p.mergeFrontierProfiles(profsChosen, cands[ci:ci+1])
			var sum int64
			for _, pi := range profs {
				sum += int64(p.evalBoostSet(int(pi), chosen, chosenMask, c, s))
			}
			gains[ci] = sum - curDelta
		}
	}
	if len(cands) < selectParallelMin || p.workers <= 1 {
		s := p.getScratch()
		defer p.putScratch(s)
		evalRange(0, len(cands), s)
		return
	}
	var wg sync.WaitGroup
	chunk := (len(cands) + p.workers - 1) / p.workers
	for w := 0; w < p.workers; w++ {
		lo := w * chunk
		if lo >= len(cands) {
			break
		}
		hi := lo + chunk
		if hi > len(cands) {
			hi = len(cands)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			s := p.getScratch()
			defer p.putScratch(s)
			evalRange(lo, hi, s)
		}(lo, hi)
	}
	wg.Wait()
}

// greedyBoostNaive is the retained reference implementation: each round
// it re-simulates every profile from scratch for every remaining
// candidate and takes the best (ties toward the smaller node id,
// stopping when no candidate adds activations) — exactly the semantics
// GreedyBoost reproduces incrementally. The equivalence property tests
// and the warm-selection benchmark run it against the fast path.
func (p *Pool) greedyBoostNaive(k, candCap int) ([]int32, float64, error) {
	if err := p.checkSelect(k); err != nil {
		return nil, 0, err
	}
	R := len(p.profileSeed)
	cands := append([]int32(nil), boostCandidates(p.g, p.seedMask, candidateCap(k, candCap))...)
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })

	s := p.getScratch()
	defer p.putScratch(s)
	mask := make([]bool, p.g.N())
	curSum := p.baseSum
	var chosen []int32
	for len(chosen) < k {
		best := int32(-1)
		bestSum := curSum
		for _, v := range cands {
			if mask[v] {
				continue
			}
			mask[v] = true
			var sum int64
			for pi := range p.profileSeed {
				sum += int64(p.simulate(p.profileSeed[pi], mask, false, s))
				s.reset()
			}
			mask[v] = false
			if sum > bestSum {
				best, bestSum = v, sum
			}
		}
		if best < 0 {
			break
		}
		chosen = append(chosen, best)
		mask[best] = true
		curSum = bestSum
	}
	return chosen, float64(curSum-p.baseSum) / float64(R), nil
}
