// Package model defines the pluggable diffusion-model interface the
// engine's pool serving path is written against. A Model is a factory
// for pre-sampled possible-world pools over a fixed (graph, seed set):
// sample worlds (NewPool + Pool.Extend), evaluate a boost set against
// the cached worlds (EstimateSpread / EstimateBoost), re-evaluate
// incrementally during greedy selection (GreedyBoost), and report
// resident bytes (MemoryEstimate) so the engine's byte-based LRU can
// treat every model family fairly.
//
// The engine's snapshot/LRU/result-cache/repair/tier plumbing is
// written once against these interfaces; "adding a scenario" is one
// Model implementation. Three ship here: the boosted Linear Threshold
// model (wrapping internal/lt), boosted SIR (model/sir) and k-threshold
// complex contagion (model/kthresh). The IC/PRR family stays on its own
// specialized path — PRR pools are k-dependent and carry approximation
// guarantees the generic pool contract cannot express — but shares the
// engine's mode registry.
//
// Every implementation keeps the repo's hardening contract: pool
// contents are a pure function of (seed, graph, seed set) independent
// of worker count, estimates are bit-exact across worker counts, and a
// naive full-resimulation reference is retained and property-tested
// bit-identical to the incremental path.
package model

import (
	"context"
	"fmt"

	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/lt"
	"github.com/kboost/kboost/internal/model/kthresh"
	"github.com/kboost/kboost/internal/model/sir"
)

// Pool is one model's growable possible-world pool for a fixed
// (graph, seed set). Profiles are independent of the boost budget k, so
// one pool serves every query against its seed set; only a larger
// simulation budget grows it (Extend, in place). Extend must be
// externally serialized against everything else (the engine's entry
// lock does this); all other methods only read the pool and may run
// concurrently with each other.
type Pool interface {
	// Extend grows the pool to at least target profiles; existing
	// profiles and their cached state are untouched.
	Extend(target int)
	// NumProfiles reports the current simulation count.
	NumProfiles() int
	// Generation identifies the pool contents: it increments on every
	// Extend call that added profiles, so callers may cache results
	// keyed by (generation, query) and invalidate on change.
	Generation() uint64
	// MemoryEstimate is the pool's resident bytes — exact array lengths
	// times element sizes, the contract the engine's byte eviction
	// relies on.
	MemoryEstimate() int64
	// Norms returns the model's per-node tier-0 normalizers, or nil
	// when the model ranks candidates on raw edge probabilities. The
	// slice aliases pool state and must not be modified.
	// kboost:aliased-view
	Norms() []float64
	// EstimateSpread returns the pooled estimate of the boosted spread
	// σ̂(B); EstimateBoost the coupled Δ̂_S(B) = σ̂(B) − σ̂(∅) over the
	// same worlds, differenced as integers so it is exactly zero for an
	// ineffective boost set.
	EstimateSpread(boost []int32) (float64, error)
	EstimateBoost(boost []int32) (float64, error)
	// GreedyBoost greedily selects up to k boost nodes over the model's
	// default candidate ranking capped at candCap (<= 0 picks the
	// model default); GreedyBoostAmong restricts the greedy to an
	// explicit candidate list (out-of-range ids and seeds are ignored).
	// Both return the chosen nodes in pick order and the pooled Δ̂ of
	// the chosen set.
	GreedyBoost(k, candCap int) ([]int32, float64, error)
	GreedyBoostAmong(k int, cands []int32) ([]int32, float64, error)
	// ExtendContext is Extend with cooperative cancellation and
	// shard-worker panic containment: on error (ctx canceled, injected
	// fault, contained panic) the pool must be left exactly as it was —
	// nothing merged, RNG state restored — so a retried identical call
	// produces a bit-identical pool. The engine's build and repair
	// paths use only this form.
	ExtendContext(ctx context.Context, target int) error
	// GreedyBoostContext / GreedyBoostAmongContext are the selection
	// entry points with cooperative cancellation, polled once per
	// greedy pick; the pool is read-only during selection so
	// cancellation cannot corrupt it.
	GreedyBoostContext(ctx context.Context, k, candCap int) ([]int32, float64, error)
	GreedyBoostAmongContext(ctx context.Context, k int, cands []int32) ([]int32, float64, error)
}

// Repairer is optionally implemented by pools that can migrate to a
// patched graph in place (resampling only the profiles an edge delta
// touched) instead of being dropped for a cold rebuild. The signature
// matches lt.Pool.Repair; pools that do not implement it fall back to
// rebuild on every patch.
type Repairer interface {
	Repair(g2 *graph.Graph, dirtyOut, dirtyIn []bool, maxFrac float64) (touched int, ok bool, err error)
}

// Model is one pluggable diffusion model, resolved from a request's
// (mode, params) pair. Implementations are stateless with respect to
// the graph — the same Model value serves every snapshot — so the
// engine resolves one per request and bakes Key into its cache keys.
type Model interface {
	// Name is the canonical mode string ("lt", "sir", "kthresh").
	Name() string
	// Key is the canonical (mode, params) tag baked into pool and
	// calibration cache keys, e.g. "sir:r=0.25" — distinct parameter
	// values must never share sampled worlds.
	Key() string
	// NewPool creates an empty pool for (g, seeds). seed determines
	// every profile the pool will ever contain; workers <= 0 means
	// GOMAXPROCS. Pool contents must not depend on workers.
	NewPool(g *graph.Graph, seeds []int32, seed uint64, workers int) (Pool, error)
	// EstimateSamples is the engine's tier-1 estimator: sims pool-free
	// replicates returning per-simulation boosted spread and coupled
	// delta samples, bit-identical for every worker count (each
	// simulation is seeded from its own stateless stream — the
	// diffusion.EstimateSamples pattern).
	EstimateSamples(g *graph.Graph, seeds, boost []int32, sims int, seed uint64, workers int) (spread, delta []float64, err error)
	// Tier0Norms reports whether the model can answer the closed-form
	// two-hop tier-0 estimator, and with which per-node normalizers
	// (nil norms = raw edge probabilities). ok == false declines tier 0
	// entirely: the model's transmission semantics are inexpressible as
	// per-node normalized edge probabilities, and the engine's tier
	// floor becomes tier 1.
	Tier0Norms(g *graph.Graph) (norm []float64, ok bool)
	// CandidateCap resolves a greedy candidate-pool cap against the
	// model's default (candCap < k picks it).
	CandidateCap(k, candCap int) int
}

// Params carries the per-model knobs a request may set. Zero values
// select each model's default; setting a knob for a model it does not
// apply to is rejected by New, so mistyped requests cannot silently
// fragment the pool cache.
type Params struct {
	// Recovery is mode "sir"'s per-round recovery probability, in
	// (0, 1]. 0 selects the 0.5 default.
	Recovery float64
	// Threshold is mode "kthresh"'s activation threshold (a node
	// activates once that many of its live in-edges originate at active
	// nodes), >= 1. 0 selects the default of 2.
	Threshold int
}

// Names lists the registered pluggable model names, sorted.
func Names() []string { return []string{"kthresh", "lt", "sir"} }

// New resolves a (mode, params) pair to a Model. Unknown names are the
// caller's to reject first (the engine owns the unified unknown-mode
// error); New returns an error for params that are out of range or set
// for a model they do not apply to.
func New(name string, p Params) (Model, error) {
	if p.Recovery != 0 && name != "sir" {
		return nil, fmt.Errorf("model: recovery only applies to mode \"sir\" (got mode %q)", name)
	}
	if p.Threshold != 0 && name != "kthresh" {
		return nil, fmt.Errorf("model: threshold only applies to mode \"kthresh\" (got mode %q)", name)
	}
	if p.Recovery < 0 || p.Recovery > 1 || p.Recovery != p.Recovery {
		return nil, fmt.Errorf("model: recovery %g out of range (0, 1]", p.Recovery)
	}
	if p.Threshold < 0 {
		return nil, fmt.Errorf("model: threshold %d must be >= 1", p.Threshold)
	}
	switch name {
	case "lt":
		return ltModel{}, nil
	case "sir":
		return sirModel{m: sir.New(p.Recovery)}, nil
	case "kthresh":
		return kthreshModel{m: kthresh.New(p.Threshold)}, nil
	default:
		return nil, fmt.Errorf("model: unknown model %q", name)
	}
}

// ltModel adapts internal/lt to the Model interface: the boosted
// Linear Threshold pool family, re-homed behind the generic contract.
type ltModel struct{}

func (ltModel) Name() string { return "lt" }
func (ltModel) Key() string  { return "lt" }

func (ltModel) NewPool(g *graph.Graph, seeds []int32, seed uint64, workers int) (Pool, error) {
	return lt.NewPool(g, seeds, seed, workers)
}

func (ltModel) EstimateSamples(g *graph.Graph, seeds, boost []int32, sims int, seed uint64, workers int) ([]float64, []float64, error) {
	return lt.EstimateSamples(g, seeds, boost, lt.Options{Sims: sims, Seed: seed, Workers: workers})
}

func (ltModel) Tier0Norms(g *graph.Graph) ([]float64, bool) { return lt.New(g).Norms(), true }

func (ltModel) CandidateCap(k, candCap int) int { return lt.CandidateCap(k, candCap) }

// sirModel exposes model/sir behind the interface.
type sirModel struct{ m *sir.Model }

func (s sirModel) Name() string { return "sir" }
func (s sirModel) Key() string  { return fmt.Sprintf("sir:r=%g", s.m.Recovery()) }

func (s sirModel) NewPool(g *graph.Graph, seeds []int32, seed uint64, workers int) (Pool, error) {
	return s.m.NewPool(g, seeds, seed, workers)
}

func (s sirModel) EstimateSamples(g *graph.Graph, seeds, boost []int32, sims int, seed uint64, workers int) ([]float64, []float64, error) {
	return s.m.EstimateSamples(g, seeds, boost, sims, seed, workers)
}

// Tier0Norms declines: SIR transmissibility is a per-(source, edge)
// transform (1−(1−p)^d with a random infectious duration d), which the
// two-hop estimator's per-node normalizer API cannot express. The
// engine's tier floor for "sir" is therefore tier 1.
func (s sirModel) Tier0Norms(*graph.Graph) ([]float64, bool) { return nil, false }

func (s sirModel) CandidateCap(k, candCap int) int { return defaultCandidateCap(k, candCap) }

// kthreshModel exposes model/kthresh behind the interface.
type kthreshModel struct{ m *kthresh.Model }

func (t kthreshModel) Name() string { return "kthresh" }
func (t kthreshModel) Key() string  { return fmt.Sprintf("kthresh:t=%d", t.m.Threshold()) }

func (t kthreshModel) NewPool(g *graph.Graph, seeds []int32, seed uint64, workers int) (Pool, error) {
	return t.m.NewPool(g, seeds, seed, workers)
}

func (t kthreshModel) EstimateSamples(g *graph.Graph, seeds, boost []int32, sims int, seed uint64, workers int) ([]float64, []float64, error) {
	return t.m.EstimateSamples(g, seeds, boost, sims, seed, workers)
}

// Tier0Norms answers only at threshold 1, where k-threshold activation
// degenerates to independent-cascade percolation and the raw edge
// probabilities are exactly right. At threshold >= 2 a single exposure
// can never activate a node, so the two-hop independent-path estimate
// is structurally wrong — the model declines rather than serve it.
func (t kthreshModel) Tier0Norms(*graph.Graph) ([]float64, bool) {
	if t.m.Threshold() == 1 {
		return nil, true
	}
	return nil, false
}

func (t kthreshModel) CandidateCap(k, candCap int) int { return defaultCandidateCap(k, candCap) }

// defaultCandidateCap mirrors lt.CandidateCap: candCap < k falls back
// to 4k, the candidate budget every pooled greedy in this repo uses.
func defaultCandidateCap(k, candCap int) int {
	if candCap < k {
		return 4 * k
	}
	return candCap
}
