package model

import (
	"fmt"
	"math"
	"strconv"

	"github.com/kboost/kboost/internal/graph"
)

// Content is the optional content-properties transmission modifier:
// per-request scalars describing the item being spread, applied to the
// base edge probabilities before any world is sampled. Real cascades
// transmit at content-dependent rates — a viral, credible item spreads
// along the same edges at very different probabilities than a stale one
// — so the modifier lets one graph serve many content profiles without
// uploading a reweighted copy per item.
//
// Virality scales both probabilities of every edge:
//
//	p_eff  = min(1, Virality · p)
//
// Credibility scales how much of the boost uplift survives (a boosted
// recommendation of low-credibility content converts less):
//
//	p'_eff = min(1, Virality · (p + Credibility · (p' − p)))
//
// Zero values mean "unset" and normalize to 1 (identity); both scalars
// must otherwise be positive and finite, with Credibility ≤ 1 so the
// transformed pair always satisfies the graph invariant p'_eff ≥ p_eff
// with p'_eff bounded by the boosted ceiling. The modifier is part of
// every pool and calibration cache key (see Key), so distinct content
// never shares sampled worlds.
type Content struct {
	Virality    float64 `json:"virality,omitempty"`
	Credibility float64 `json:"credibility,omitempty"`
}

// Normalize maps unset (zero) scalars to 1 and validates the rest.
func (c Content) Normalize() (Content, error) {
	if c.Virality == 0 {
		c.Virality = 1
	}
	if c.Credibility == 0 {
		c.Credibility = 1
	}
	if math.IsNaN(c.Virality) || math.IsInf(c.Virality, 0) || c.Virality <= 0 {
		return c, fmt.Errorf("model: content virality %g must be a positive finite number", c.Virality)
	}
	if math.IsNaN(c.Credibility) || c.Credibility <= 0 || c.Credibility > 1 {
		return c, fmt.Errorf("model: content credibility %g out of range (0, 1]", c.Credibility)
	}
	return c, nil
}

// Identity reports whether the (normalized) modifier leaves the graph
// unchanged, letting callers skip the derived-graph build entirely.
func (c Content) Identity() bool { return c.Virality == 1 && c.Credibility == 1 }

// Key returns the canonical cache-key fragment for the modifier: empty
// for the identity (so content-free requests keep their existing keys),
// otherwise a "v=..|c=.." tag with exact float formatting — two
// contents collide only if they define the same transform.
func (c Content) Key() string {
	if c.Identity() {
		return ""
	}
	return "v=" + strconv.FormatFloat(c.Virality, 'g', -1, 64) +
		"|c=" + strconv.FormatFloat(c.Credibility, 'g', -1, 64)
}

// Apply builds the content-derived graph: every edge's probability pair
// mapped through the modifier. The transform preserves the builder's
// invariants (both probabilities in [0, 1], boosted ≥ base) for any
// normalized Content, so the build cannot fail on a valid input graph.
// Identity modifiers return g itself.
func (c Content) Apply(g *graph.Graph) (*graph.Graph, error) {
	if c.Identity() {
		return g, nil
	}
	edges := g.Edges()
	for i := range edges {
		e := &edges[i]
		p := c.Virality * e.P
		pb := c.Virality * (e.P + c.Credibility*(e.PBoost-e.P))
		if p > 1 {
			p = 1
		}
		if pb > 1 {
			pb = 1
		}
		e.P, e.PBoost = p, pb
	}
	return graph.FromEdges(g.N(), edges)
}
