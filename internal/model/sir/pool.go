package sir

// This file is the pooled Monte-Carlo evaluation subsystem for boosted
// SIR: the SIR analogue of internal/lt's threshold-profile pool. A Pool
// holds R pre-sampled percolation profiles — possible worlds defined by
// hash-derived infectious durations d(ps, u) and edge uniforms
// U(ps, u, v) — together with each profile's cached base-world state:
// the seeds' forward reachable set over live edges (U < q) and the
// frontier of boost-reachable nodes (inactive nodes with at least one
// boost-only in-edge, q ≤ U < q', from a base-active node). Boosting is
// monotone under the shared uniforms, so warm queries evaluate boost
// sets incrementally from the cached base state, and a profile can only
// gain infections from a boost — never lose them.

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"github.com/kboost/kboost/internal/faults"
	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/panicsafe"
	"github.com/kboost/kboost/internal/rng"
)

// cancelStride is the amortized cooperative-cancellation poll interval
// inside shard simulation loops (see internal/prr): one ctx check per
// 64 profiles.
const cancelStride = 64

// Pool is a growable collection of boosted-SIR percolation profiles for
// a fixed (graph, seed set). Profiles are independent of the boost
// budget k, so one pool serves every query against its seed set.
// Mutation (Extend) must be externally serialized against everything
// else; estimation and selection only read the pool and may run
// concurrently with each other.
type Pool struct {
	m        *Model
	g        *graph.Graph
	seeds    []int32 // sorted, deduplicated
	seedMask []bool
	workers  int
	root     *rng.Source

	// profileSeed[i] seeds the duration and edge-uniform hashes of
	// profile i. Seeds are drawn serially from root, so pool contents
	// are independent of the worker count.
	profileSeed []uint64

	// Base-world state per profile, stored flat (CSR-style): the
	// ever-infected set under B = ∅, and the frontier — inactive nodes
	// reachable through at least one boost-only edge from a base-active
	// node. Node lists are sorted per profile so membership tests are
	// binary searches. Unlike LT there are no stored weights: SIR
	// activation is a single-edge event, so frontier membership alone
	// carries the incremental-evaluation state.
	activeStart []int32
	activeItems []int32
	frontStart  []int32
	frontItems  []int32

	// baseSum is Σ_i |active_i|: the base spread numerator.
	baseSum int64

	// idxStart/idxItems: node -> profiles whose base frontier contains
	// it. A boost set can only change profiles where at least one
	// boosted node sits in the base frontier (the first boosted
	// infection must cross a boost-only edge from a base-active node),
	// so estimates and greedy rounds iterate these posting lists instead
	// of all R profiles.
	idxStart []int32
	idxItems []int32

	// generation counts Extend calls that added profiles; estimates and
	// selections are pure functions of the pool contents, so callers may
	// cache results keyed by (generation, query) and invalidate on
	// change.
	generation uint64

	scratch sync.Pool // of *evalScratch
}

// Norms returns nil: SIR ranks boost candidates on raw edge
// probabilities (no per-node normalization exists — transmissibility is
// a per-source random transform).
func (p *Pool) Norms() []float64 { return nil }

// NewPool creates an empty pool for (g, seeds). seed determines every
// profile the pool will ever contain; workers <= 0 means GOMAXPROCS.
// Pool contents do not depend on workers.
func (m *Model) NewPool(g *graph.Graph, seeds []int32, seed uint64, workers int) (*Pool, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	for _, v := range seeds {
		if v < 0 || int(v) >= g.N() {
			return nil, fmt.Errorf("sir: seed %d out of range [0,%d)", v, g.N())
		}
	}
	p := &Pool{
		m:           m,
		g:           g,
		seedMask:    make([]bool, g.N()),
		workers:     workers,
		root:        rng.New(seed),
		activeStart: []int32{0},
		frontStart:  []int32{0},
		idxStart:    make([]int32, g.N()+1),
	}
	for _, v := range seeds {
		if !p.seedMask[v] {
			p.seedMask[v] = true
			p.seeds = append(p.seeds, v)
		}
	}
	slices.Sort(p.seeds)
	p.scratch.New = func() interface{} { return newEvalScratch(g.N()) }
	return p, nil
}

// NumProfiles returns the number of sampled percolation profiles.
func (p *Pool) NumProfiles() int { return len(p.profileSeed) }

// Generation identifies the pool's contents: it increments on every
// Extend call that adds profiles.
func (p *Pool) Generation() uint64 { return p.generation }

// BaseSpread returns the pooled estimate of the unboosted SIR spread
// σ̂(∅), cached from the base reachability.
func (p *Pool) BaseSpread() float64 {
	if len(p.profileSeed) == 0 {
		return 0
	}
	return float64(p.baseSum) / float64(len(p.profileSeed))
}

// MemoryEstimate returns the pool's resident bytes: the flat profile
// CSRs, the inverted index and the profile seeds — exact array lengths
// × element sizes, matching the accounting the other pool families
// report so the engine's byte-based eviction compares them fairly.
func (p *Pool) MemoryEstimate() int64 {
	bytes := int64(len(p.activeItems)+len(p.frontItems)+len(p.idxItems)) * 4
	bytes += int64(len(p.profileSeed)) * 8
	bytes += int64(len(p.activeStart)+len(p.frontStart)+len(p.idxStart)) * 4
	return bytes
}

// evalScratch is the reusable per-worker state for profile evaluation:
// dense arrays addressed by node id, cleaned after each profile via the
// load and activation logs so reuse is O(touched), not O(n).
type evalScratch struct {
	active []bool
	queue  []int32

	loadedAct []int32 // nodes whose active flag was set by loadState
	actNode   []int32 // every activation since load, in order
	touched   []int32 // boost-only push targets (base-world frontier capture)

	tstamp []int32 // touch-collection / dedup stamps
	tepoch int32   // kboost:epoch
}

// bumpTouchEpoch advances the touch stamp, clearing the stamp array
// when the int32 epoch wraps so stale stamps can never read as current.
// kboost:epoch-helper
func (s *evalScratch) bumpTouchEpoch() {
	if s.tepoch == math.MaxInt32 {
		clear(s.tstamp)
		s.tepoch = 0
	}
	s.tepoch++
}

func newEvalScratch(n int) *evalScratch {
	return &evalScratch{
		active: make([]bool, n),
		tstamp: make([]int32, n),
	}
}

func (p *Pool) getScratch() *evalScratch  { return p.scratch.Get().(*evalScratch) }
func (p *Pool) putScratch(s *evalScratch) { p.scratch.Put(s) }

// reset clears every node the scratch activated since the last reset.
func (s *evalScratch) reset() {
	for _, v := range s.loadedAct {
		s.active[v] = false
	}
	for _, v := range s.actNode {
		s.active[v] = false
	}
	s.loadedAct = s.loadedAct[:0]
	s.actNode = s.actNode[:0]
	s.touched = s.touched[:0]
	s.queue = s.queue[:0]
}

// loadState installs a profile's base active set into the scratch.
func (s *evalScratch) loadState(active []int32) {
	for _, u := range active {
		s.active[u] = true
	}
	s.loadedAct = append(s.loadedAct, active...)
}

// runCascade drains s.queue: each newly infected node u attempts its
// out-edges under the profile's percolation draws. An edge transmits
// when its uniform falls below the base transmissibility q, or — for
// targets in the boost set (mask membership or the tentative candidate
// extra) — below the boosted transmissibility q'. With collect set
// (base-world simulation), boost-only targets that did not activate are
// logged into s.touched (epoch-deduplicated) for frontier extraction.
// Returns the number of activations (excluding nodes queued by the
// caller).
func (p *Pool) runCascade(ps uint64, mask []bool, extra int32, collect bool, s *evalScratch) int {
	g := p.g
	activated := 0
	for qi := 0; qi < len(s.queue); qi++ {
		u := s.queue[qi]
		d := p.m.duration(ps, u)
		to := g.OutTo(u)
		pp := g.OutP(u)
		pb := g.OutPBoost(u)
		for i, t := range to {
			if s.active[t] {
				continue
			}
			uu := edgeU(ps, u, t)
			if uu < transQ(pp[i], d) {
				s.active[t] = true
				s.actNode = append(s.actNode, t)
				s.queue = append(s.queue, t)
				activated++
				continue
			}
			boosted := (mask != nil && mask[t]) || t == extra
			if (boosted || collect) && uu < transQ(pb[i], d) {
				if boosted {
					s.active[t] = true
					s.actNode = append(s.actNode, t)
					s.queue = append(s.queue, t)
					activated++
				} else if s.tstamp[t] != s.tepoch {
					s.tstamp[t] = s.tepoch
					s.touched = append(s.touched, t)
				}
			}
		}
	}
	s.queue = s.queue[:0]
	return activated
}

// simulate runs one full percolation reachability from an empty
// scratch: seeds activate unconditionally, then the cascade runs under
// the boost mask. It returns the infected count and leaves the final
// state in s (caller extracts what it needs, then resets).
func (p *Pool) simulate(ps uint64, mask []bool, collect bool, s *evalScratch) int {
	for _, v := range p.seeds {
		s.active[v] = true
		s.actNode = append(s.actNode, v)
		s.queue = append(s.queue, v)
	}
	return len(p.seeds) + p.runCascade(ps, mask, -1, collect, s)
}

// boostActivates reports whether boosting node b activates it against
// the currently active set: some active in-neighbor's edge transmits at
// the boosted probability. (A base-active in-neighbor with a *live*
// edge into inactive b cannot exist — b would be base-active — so the
// boosted-transmissibility test alone is exact here.)
func (p *Pool) boostActivates(ps uint64, b int32, s *evalScratch) bool {
	in := p.g.InFrom(b)
	pb := p.g.InPBoost(b)
	for j, u := range in {
		if !s.active[u] {
			continue
		}
		if edgeU(ps, u, b) < transQ(pb[j], p.m.duration(ps, u)) {
			return true
		}
	}
	return false
}

// baseActive / baseFront / baseCount are CSR views of one profile's
// cached base-world state.
func (p *Pool) baseActive(pi int) []int32 {
	return p.activeItems[p.activeStart[pi]:p.activeStart[pi+1]]
}
func (p *Pool) baseFront(pi int) []int32 {
	return p.frontItems[p.frontStart[pi]:p.frontStart[pi+1]]
}
func (p *Pool) baseCount(pi int) int32 {
	return p.activeStart[pi+1] - p.activeStart[pi]
}

// frontierProfiles returns the profiles whose base frontier contains v.
func (p *Pool) frontierProfiles(v int32) []int32 {
	return p.idxItems[p.idxStart[v]:p.idxStart[v+1]]
}

// sirShard is one worker's private Extend output: the base-world state
// of a contiguous run of profiles, stored flat exactly like the pool's
// arrays (local CSR offsets starting at 0). Shards cover ascending
// profile ranges and are merged in range order with bulk appends, so
// pool contents stay independent of scheduling.
type sirShard struct {
	activeStart []int32 // len = profiles+1
	activeItems []int32
	frontStart  []int32 // len = profiles+1
	frontItems  []int32
}

// Extend grows the pool to at least target profiles. Growth is
// incremental: existing profiles and their cached state are untouched,
// only the shortfall is simulated (sharded across the pool's workers,
// merged in profile order), and the frontier index is merged in one
// pass.
func (p *Pool) Extend(target int) {
	// Ctx-less compat form; without a cancelable ctx or armed faults the
	// context variant cannot fail.
	_ = p.ExtendContext(context.Background(), target)
}

// ExtendContext is Extend with cooperative cancellation and shard-worker
// panic containment. On any error — ctx canceled, injected fault, or a
// worker panic (returned as *panicsafe.Error) — no shard is merged and
// the pool rolls back to its exact pre-call state: the appended profile
// seeds are truncated and the root RNG restored, so a retried call
// draws the same seeds again and the final pool is bit-identical to one
// built without interruption.
func (p *Pool) ExtendContext(ctx context.Context, target int) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	need := target - len(p.profileSeed)
	if need <= 0 {
		return nil
	}
	from := len(p.profileSeed)
	savedRoot := *p.root // for rollback: Uint64 draws below advance it
	for i := 0; i < need; i++ {
		p.profileSeed = append(p.profileSeed, p.root.Uint64())
	}
	shards := make([]sirShard, p.workers)
	var wg sync.WaitGroup
	var stop atomic.Bool // flipped on first failure so sibling shards bail early
	errs := make([]error, p.workers)
	chunk := (need + p.workers - 1) / p.workers
	for w := 0; w < p.workers; w++ {
		lo := w * chunk
		if lo >= need {
			break
		}
		hi := lo + chunk
		if hi > need {
			hi = need
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			err := panicsafe.Do(func() {
				if e := faults.CheckContext(ctx, faults.PoolBuildShard); e != nil {
					errs[w] = e
					stop.Store(true)
					return
				}
				s := p.getScratch()
				defer p.putScratch(s)
				sh := &shards[w]
				sh.activeStart = append(sh.activeStart, 0)
				sh.frontStart = append(sh.frontStart, 0)
				for i := lo; i < hi; i++ {
					if (i-lo)%cancelStride == 0 && (stop.Load() || ctx.Err() != nil) {
						errs[w] = ctx.Err()
						stop.Store(true)
						return
					}
					p.simulateBaseInto(p.profileSeed[from+i], sh, s)
				}
			})
			if err != nil {
				errs[w] = err
				stop.Store(true)
			}
		}(w, lo, hi)
	}
	wg.Wait()
	abort := ctx.Err()
	for _, err := range errs {
		if err != nil {
			abort = err
			break
		}
	}
	if abort != nil {
		p.profileSeed = p.profileSeed[:from]
		*p.root = savedRoot
		return abort
	}

	// Merge the shards in profile order: bulk-append the flat state,
	// shifting the local CSR offsets. Trailing workers get no profiles
	// when need is smaller than their chunk offset; their shards stay
	// zero-valued and are skipped.
	for w := range shards {
		sh := &shards[w]
		if len(sh.activeStart) == 0 {
			continue
		}
		activeBase := int32(len(p.activeItems))
		frontBase := int32(len(p.frontItems))
		p.activeItems = append(p.activeItems, sh.activeItems...)
		p.frontItems = append(p.frontItems, sh.frontItems...)
		for _, end := range sh.activeStart[1:] {
			p.activeStart = append(p.activeStart, activeBase+end)
		}
		for _, end := range sh.frontStart[1:] {
			p.frontStart = append(p.frontStart, frontBase+end)
		}
		p.baseSum += int64(len(sh.activeItems))
	}

	// Merge the frontier index: count the batch contribution per node,
	// then interleave old and new posting lists in one O(old+new) pass.
	n := p.g.N()
	counts := make([]int32, n)
	for w := range shards {
		for _, v := range shards[w].frontItems {
			counts[v]++
		}
	}
	newStart := make([]int32, n+1)
	for v := 0; v < n; v++ {
		newStart[v+1] = newStart[v] + (p.idxStart[v+1] - p.idxStart[v]) + counts[v]
	}
	newItems := make([]int32, newStart[n])
	next := counts // reuse as per-node write cursors
	for v := 0; v < n; v++ {
		old := p.idxItems[p.idxStart[v]:p.idxStart[v+1]]
		copy(newItems[newStart[v]:], old)
		next[v] = newStart[v] + int32(len(old))
	}
	for pi := from; pi < len(p.profileSeed); pi++ {
		for _, v := range p.baseFront(pi) {
			newItems[next[v]] = int32(pi)
			next[v]++
		}
	}
	p.idxStart, p.idxItems = newStart, newItems
	p.generation++
	return nil
}

// simulateBaseInto runs one profile's base world (B = ∅) and appends
// its cached state to sh: sorted infected set, sorted frontier (the
// boost-only push targets that stayed inactive).
func (p *Pool) simulateBaseInto(ps uint64, sh *sirShard, s *evalScratch) {
	s.bumpTouchEpoch()
	p.simulate(ps, nil, true, s)
	activeOff := len(sh.activeItems)
	sh.activeItems = append(sh.activeItems, s.actNode...)
	active := sh.activeItems[activeOff:]
	slices.Sort(active)
	sh.activeStart = append(sh.activeStart, int32(len(sh.activeItems)))
	frontOff := len(sh.frontItems)
	for _, v := range s.touched {
		if !s.active[v] {
			sh.frontItems = append(sh.frontItems, v)
		}
	}
	front := sh.frontItems[frontOff:]
	slices.Sort(front)
	sh.frontStart = append(sh.frontStart, int32(len(sh.frontItems)))
	s.reset()
}

// estimateParallelMin is the minimum number of affected profiles before
// batch estimation fans out to the pool's workers; a variable so tests
// can force the parallel path on small pools.
var estimateParallelMin = 256

// EstimateSpread returns the pooled estimate of the boosted-SIR spread
// σ̂(B) by incrementally evaluating boost from every affected profile's
// cached base state. It is deterministic for a fixed pool generation,
// bit-exact across worker counts, and shares its possible worlds with
// every other estimate from the same pool (common random numbers).
func (p *Pool) EstimateSpread(boost []int32) (float64, error) {
	total, err := p.estimateCount(boost)
	if err != nil {
		return 0, err
	}
	return float64(total) / float64(len(p.profileSeed)), nil
}

// EstimateBoost returns the pooled estimate of the SIR boost
// Δ̂_S(B) = σ̂(B) − σ̂(∅). Both terms are evaluated on the same
// percolation profiles, so the difference is coupled, exactly zero for
// an empty or ineffective boost set, and — because the infection sums
// are differenced as integers before dividing — bit-identical to the
// estimate GreedyBoost reports for the same boost set.
func (p *Pool) EstimateBoost(boost []int32) (float64, error) {
	total, err := p.estimateCount(boost)
	if err != nil {
		return 0, err
	}
	return float64(total-p.baseSum) / float64(len(p.profileSeed)), nil
}

// estimateCount returns Σ_i |active_i(B)|, the integer numerator of the
// pooled spread estimate: the cached base sum plus the incremental
// deltas of the profiles whose frontier intersects the boost set (no
// other profile can change — see idxStart).
func (p *Pool) estimateCount(boost []int32) (int64, error) {
	R := len(p.profileSeed)
	if R == 0 {
		return 0, fmt.Errorf("sir: estimate on an empty pool (call Extend first)")
	}
	mask := make([]bool, p.g.N())
	for _, v := range boost {
		if v < 0 || int(v) >= p.g.N() {
			return 0, fmt.Errorf("sir: boost node %d out of range [0,%d)", v, p.g.N())
		}
		mask[v] = true
	}
	// Dense boost list (deduplicated, sorted) for the per-profile pass.
	var bset []int32
	for v := int32(0); int(v) < p.g.N(); v++ {
		if mask[v] {
			bset = append(bset, v)
		}
	}
	profs := p.mergeFrontierProfiles(nil, bset)
	return p.baseSum + p.sumDeltas(profs, bset, mask, -1), nil
}

// mergeFrontierProfiles returns the sorted, deduplicated union of base
// (already sorted ascending) and the posting lists of each node in
// vs — the profiles a boost over base's owners plus vs could change.
func (p *Pool) mergeFrontierProfiles(base []int32, vs []int32) []int32 {
	lists := make([][]int32, 0, len(vs)+1)
	if len(base) > 0 {
		lists = append(lists, base)
	}
	for _, v := range vs {
		if pl := p.frontierProfiles(v); len(pl) > 0 {
			lists = append(lists, pl)
		}
	}
	return mergeSorted(lists)
}

// mergeSorted merges sorted int32 lists into a sorted, deduplicated
// union. The posting lists are short relative to R, so a simple k-way
// min scan is enough.
func mergeSorted(lists [][]int32) []int32 {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return lists[0]
	}
	var out []int32
	cur := make([]int, len(lists))
	for {
		best := int32(math.MaxInt32)
		found := false
		for li, l := range lists {
			if cur[li] < len(l) && l[cur[li]] < best {
				best = l[cur[li]]
				found = true
			}
		}
		if !found {
			return out
		}
		out = append(out, best)
		for li, l := range lists {
			for cur[li] < len(l) && l[cur[li]] == best {
				cur[li]++
			}
		}
	}
}

// sumDeltas evaluates the boost set incrementally on each listed
// profile and returns the summed activation deltas, fanning out to the
// pool's workers for large batches. Deltas are integers summed in any
// order, so the result does not depend on the sharding.
func (p *Pool) sumDeltas(profs []int32, bset []int32, mask []bool, extra int32) int64 {
	evalChunk := func(lo, hi int, s *evalScratch) int64 {
		var sum int64
		for _, pi := range profs[lo:hi] {
			sum += int64(p.evalBoostSet(int(pi), bset, mask, extra, s))
		}
		return sum
	}
	if len(profs) < estimateParallelMin || p.workers <= 1 {
		s := p.getScratch()
		defer p.putScratch(s)
		return evalChunk(0, len(profs), s)
	}
	sums := make([]int64, p.workers)
	var wg sync.WaitGroup
	chunk := (len(profs) + p.workers - 1) / p.workers
	for w := 0; w < p.workers; w++ {
		lo := w * chunk
		if lo >= len(profs) {
			break
		}
		hi := lo + chunk
		if hi > len(profs) {
			hi = len(profs)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			s := p.getScratch()
			defer p.putScratch(s)
			sums[w] = evalChunk(lo, hi, s)
		}(w, lo, hi)
	}
	wg.Wait()
	var total int64
	for _, v := range sums {
		total += v
	}
	return total
}

// evalBoostSet computes the marginal infections of boosting
// bset ∪ {extra} on profile pi, starting from the cached base
// reachability. Phase 1 scans each inactive boosted node's in-edges
// against the base active set (the only sources whose out-attempts the
// cascade will not replay); phase 2 cascades from the nodes that
// activated. The scratch is left clean.
func (p *Pool) evalBoostSet(pi int, bset []int32, mask []bool, extra int32, s *evalScratch) int {
	ps := p.profileSeed[pi]
	s.loadState(p.baseActive(pi))
	delta := 0
	activate := func(b int32) {
		if s.active[b] {
			return
		}
		if p.boostActivates(ps, b, s) {
			s.active[b] = true
			s.actNode = append(s.actNode, b)
			s.queue = append(s.queue, b)
			delta++
		}
	}
	for _, b := range bset {
		activate(b)
	}
	if extra >= 0 {
		activate(extra)
	}
	delta += p.runCascade(ps, mask, extra, false, s)
	s.reset()
	return delta
}

// estimateSpreadNaive re-simulates every profile from scratch under the
// boost mask — the retained reference implementation the property tests
// hold EstimateSpread to.
func (p *Pool) estimateSpreadNaive(boost []int32) float64 {
	mask := make([]bool, p.g.N())
	for _, v := range boost {
		mask[v] = true
	}
	s := p.getScratch()
	defer p.putScratch(s)
	var sum int64
	for pi := range p.profileSeed {
		sum += int64(p.simulate(p.profileSeed[pi], mask, false, s))
		s.reset()
	}
	return float64(sum) / float64(len(p.profileSeed))
}
