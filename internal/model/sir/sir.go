// Package sir implements the boosted SIR (susceptible — infectious —
// recovered) diffusion model behind the generic model.Pool contract.
//
// Dynamics: an infectious node u attempts to transmit along each
// out-edge (u, v) once per round with probability p (the edge's base
// probability; p' = pBoost when v is boosted — boosting a node raises
// transmission on its in-edges, the same target-side semantics as the
// repo's boosted-IC model), and recovers after each round with
// probability γ (the recovery knob). A recovered node never transmits
// again; spread is the number of ever-infected nodes.
//
// The pooled implementation uses the standard percolation reduction:
// draw u's infectious duration d(u) ~ 1 + Geometric(γ) once per
// (profile, node), then edge (u, v) transmits iff a single uniform
// U(u, v) falls below the aggregate transmissibility
// q = 1 − (1 − p)^d(u). The ever-infected set is exactly the forward
// reachable set of the seeds over transmitting edges, so one profile is
// a static possible world — the same shape as the repo's LT threshold
// profiles — and boosting only relabels in-edges of boosted nodes from
// q to q' = 1 − (1 − p')^d(u) ≥ q under the *same* U: worlds are
// monotone-coupled, a boosted world's infected set always contains the
// base world's, and warm queries evaluate boost sets incrementally from
// the cached base reachability instead of resimulating.
//
// Durations and edge uniforms are pure hashes of (profile seed, node)
// and (profile seed, tail, head) — never a consumed RNG stream — so a
// world does not depend on traversal order, worker count, or the boost
// set under evaluation (common random numbers), and every pooled
// estimate is bit-exact regardless of parallelism. Hashing by node-id
// pair rather than edge index also keeps draws aligned between the CSR
// out- and in-views of the same edge.
package sir

import "math"

// DefaultRecovery is the recovery probability selected by a zero knob.
const DefaultRecovery = 0.5

// maxDuration caps the sampled infectious duration. At the minimum
// meaningful recovery values the cap binds with probability < 1e-9 per
// node while keeping transmissibility evaluation O(1).
const maxDuration = 64

// Model holds the SIR parameters: the per-round recovery probability γ.
type Model struct {
	recovery float64
	// invLogS = 1 / ln(1 − γ), precomputed for duration sampling. The
	// γ = 1 endpoint yields -0 and the sampling arithmetic degenerates
	// to d = 1 exactly, so no special case is needed.
	invLogS float64
}

// New returns a Model with recovery probability γ; 0 selects
// DefaultRecovery. Callers validate γ ∈ (0, 1] (internal/model does for
// the engine path).
func New(recovery float64) *Model {
	if recovery == 0 {
		recovery = DefaultRecovery
	}
	return &Model{recovery: recovery, invLogS: 1 / math.Log(1-recovery)}
}

// Recovery returns the model's per-round recovery probability.
func (m *Model) Recovery() float64 { return m.recovery }

// mix64 is the splitmix64 finalizer: a bijective avalanche mix, the
// same hash core lt's threshold draw uses.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hash01 maps a mixed word to a uniform float64 in [0, 1).
func hash01(x uint64) float64 {
	return float64(mix64(x)>>11) * (1.0 / (1 << 53))
}

// durSalt separates the duration draw's hash domain from edgeU's.
const durSalt = 0xd1342543de82ef95

// duration returns d(u) ∈ [1, maxDuration]: node u's infectious
// duration in the profile seeded by ps, sampled as
// 1 + Geometric(γ) by inversion from a hash uniform.
func (m *Model) duration(ps uint64, u int32) int {
	u01 := hash01(ps ^ durSalt ^ (uint64(uint32(u))+1)*0x9e3779b97f4a7c15)
	d := 1 + int(math.Log(1-u01)*m.invLogS)
	if d > maxDuration {
		d = maxDuration
	}
	return d
}

// edgeU returns U(u, v) ∈ [0, 1): the transmission uniform of edge
// (u, v) in the profile seeded by ps. Keyed by the node-id pair, not an
// edge index, so the out-CSR cascade and the in-CSR boost scan see the
// same draw for the same edge.
func edgeU(ps uint64, u, v int32) float64 {
	return hash01(ps ^ (uint64(uint32(u))+1)*0x9e3779b97f4a7c15 ^ (uint64(uint32(v))+1)*0x94d049bb133111eb)
}

// transQ returns the aggregate transmissibility 1 − (1 − p)^d of an
// edge with per-round probability p from a source infectious for d
// rounds, by loop multiplication (d averages 1/γ and is capped at
// maxDuration; math.Pow would be slower and needs cross-platform
// bit-exactness auditing).
func transQ(p float64, d int) float64 {
	if p <= 0 {
		return 0
	}
	s := 1 - p
	pr := s
	for i := 1; i < d; i++ {
		pr *= s
	}
	return 1 - pr
}
