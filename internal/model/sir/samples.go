package sir

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/rng"
)

// EstimateSamples runs sims pool-free boosted-SIR replicates and
// returns the per-simulation boosted spread and boost delta samples
// (delta is all zeros when boost is empty). Replicate i's world is the
// percolation profile seeded by rng.StreamSeed(seed, i) — a stateless
// hash, so the boosted and base runs of one replicate share the exact
// same durations and edge uniforms (perfect common-random-numbers
// coupling: delta is never negative) and the returned vectors are
// bit-identical for every worker count. This is the engine's tier-1
// estimator for mode "sir"; the sample vectors feed stats.Summarize for
// confidence intervals.
func (m *Model) EstimateSamples(g *graph.Graph, seeds, boost []int32, sims int, seed uint64, workers int) (spread, delta []float64, err error) {
	for _, v := range append(append([]int32(nil), seeds...), boost...) {
		if v < 0 || int(v) >= g.N() {
			return nil, nil, fmt.Errorf("sir: node %d out of range [0,%d)", v, g.N())
		}
	}
	if sims <= 0 {
		return nil, nil, fmt.Errorf("sir: sims=%d must be >= 1", sims)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// An empty pool supplies the seed set, scratch pool and cascade; no
	// profiles are ever sampled, each replicate brings its own stream
	// seed.
	p, err := m.NewPool(g, seeds, seed, 1)
	if err != nil {
		return nil, nil, err
	}
	mask := make([]bool, g.N())
	for _, v := range boost {
		mask[v] = true
	}
	spread = make([]float64, sims)
	delta = make([]float64, sims)
	pair := len(boost) > 0

	var wg sync.WaitGroup
	per := sims / workers
	rem := sims % workers
	lo := 0
	for w := 0; w < workers; w++ {
		count := per
		if w < rem {
			count++
		}
		if count == 0 {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			s := p.getScratch()
			defer p.putScratch(s)
			for i := lo; i < hi; i++ {
				ps := rng.StreamSeed(seed, uint64(i))
				boosted := float64(p.simulate(ps, mask, false, s))
				s.reset()
				spread[i] = boosted
				if pair {
					base := float64(p.simulate(ps, nil, false, s))
					s.reset()
					delta[i] = boosted - base
				}
			}
		}(lo, lo+count)
		lo += count
	}
	wg.Wait()
	return spread, delta, nil
}
