package sir

import (
	"testing"

	"github.com/kboost/kboost/internal/dataset"
)

// The SIR benchmarks run on the same flixster stand-in the LT pool
// benchmarks use. The Warm pair below is sized so every sub-benchmark
// completes well over 20 iterations (the bench-gate's noise floor);
// `make bench` emits them into BENCH_select.json and `make bench-gate`
// holds them to the 25% envelope. Dimensions are deliberately NOT
// testing.Short()-gated: the gate compares against a committed
// baseline, so they must be identical on every machine.
func benchSIRPool(b *testing.B) *Pool {
	b.Helper()
	spec, err := dataset.ByName("flixster")
	if err != nil {
		b.Fatal(err)
	}
	g, err := spec.Generate(0.002, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	seeds := dataset.InfluentialSeeds(g, 10)
	pool, err := New(0.5).NewPool(g, seeds, 7, 0)
	if err != nil {
		b.Fatal(err)
	}
	pool.Extend(200)
	return pool
}

// BenchmarkSIRSelectWarm measures repeat-query selection on an
// already-built percolation pool: the frontier-indexed GreedyBoost
// against the retained full-resimulation naive reference.
func BenchmarkSIRSelectWarm(b *testing.B) {
	const k = 4
	pool := benchSIRPool(b)
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := pool.GreedyBoost(k, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := pool.greedyBoostNaive(k, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSIREstimateWarm measures the incremental batch estimator
// against the from-scratch re-simulation reference on the same pool.
func BenchmarkSIREstimateWarm(b *testing.B) {
	pool := benchSIRPool(b)
	n := pool.g.N()
	set := []int32{int32(n / 3), int32(n / 2), int32(2 * n / 3)}
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pool.EstimateSpread(set); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pool.estimateSpreadNaive(set)
		}
	})
}
