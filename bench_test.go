package kboost

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benchmarks for the design choices DESIGN.md calls out. Each
// figure benchmark drives the same runner as cmd/boostexp, at a reduced
// scale so `go test -bench=.` finishes in minutes; crank the scale via
// the exp.Config fields when reproducing EXPERIMENTS.md numbers.

import (
	"io"
	"testing"

	"github.com/kboost/kboost/internal/diffusion"
	"github.com/kboost/kboost/internal/exp"
	"github.com/kboost/kboost/internal/gen"
	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/maxcover"
	"github.com/kboost/kboost/internal/prr"
	"github.com/kboost/kboost/internal/rng"
	"github.com/kboost/kboost/internal/rrset"
	"github.com/kboost/kboost/internal/tree"
)

// benchConfig is the scaled-down harness configuration shared by the
// figure benchmarks.
func benchConfig() exp.Config {
	return exp.Config{
		Scale:      0.004,
		Datasets:   []string{"digg", "flixster"},
		KValues:    []int{5, 20},
		Sims:       500,
		MaxSamples: 20000,
		Seed:       1,
		TreeN:      511,
		TreeKs:     []int{10, 25},
		TreeEps:    []float64{0.5, 1.0},
	}
}

func runExperiment(b *testing.B, id string, cfg exp.Config) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := exp.Run(id, cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Datasets(b *testing.B)  { runExperiment(b, "table1", benchConfig()) }
func BenchmarkFig5BoostVsK(b *testing.B)    { runExperiment(b, "fig5", benchConfig()) }
func BenchmarkFig6RunningTime(b *testing.B) { runExperiment(b, "fig6", benchConfig()) }
func BenchmarkTable2Compression(b *testing.B) {
	runExperiment(b, "table2", benchConfig())
}
func BenchmarkFig7SandwichRatio(b *testing.B) { runExperiment(b, "fig7", benchConfig()) }
func BenchmarkFig8BoostParameter(b *testing.B) {
	cfg := benchConfig()
	cfg.Datasets = []string{"digg"} // five betas per dataset: keep one
	runExperiment(b, "fig8", cfg)
}
func BenchmarkFig9SandwichBeta(b *testing.B) {
	cfg := benchConfig()
	cfg.Datasets = []string{"digg"}
	runExperiment(b, "fig9", cfg)
}
func BenchmarkFig10RandomSeeds(b *testing.B) { runExperiment(b, "fig10", benchConfig()) }
func BenchmarkFig11RandomSeedsTime(b *testing.B) {
	runExperiment(b, "fig11", benchConfig())
}
func BenchmarkTable3CompressionRandom(b *testing.B) {
	runExperiment(b, "table3", benchConfig())
}
func BenchmarkFig12SandwichRandom(b *testing.B) { runExperiment(b, "fig12", benchConfig()) }
func BenchmarkFig13BudgetAllocation(b *testing.B) {
	cfg := benchConfig()
	cfg.Datasets = []string{"digg"}
	runExperiment(b, "fig13", cfg)
}
func BenchmarkFig14TreeGreedyVsDP(b *testing.B) { runExperiment(b, "fig14", benchConfig()) }
func BenchmarkFig15TreeSizes(b *testing.B)      { runExperiment(b, "fig15", benchConfig()) }

// --- component benchmarks ---

func benchGraph(b *testing.B, scale float64) *graph.Graph {
	b.Helper()
	g, err := GenerateDataset("flixster", scale, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkPRRGeneration measures raw PRR-graph generation+compression
// throughput (the sampling phase's inner loop).
func BenchmarkPRRGeneration(b *testing.B) {
	g := benchGraph(b, 0.01)
	seeds := InfluentialSeeds(g, 20)
	gen, err := prr.NewGenerator(g, seeds, 20, prr.ModeFull)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(7)
	edges := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := gen.Generate(r)
		edges += res.EdgesExamined
	}
	b.ReportMetric(float64(edges)/float64(b.N), "edges/op")
}

// BenchmarkPRRGenerationLB measures the leaner critical-nodes-only
// generation used by PRR-Boost-LB.
func BenchmarkPRRGenerationLB(b *testing.B) {
	g := benchGraph(b, 0.01)
	seeds := InfluentialSeeds(g, 20)
	gen, err := prr.NewGenerator(g, seeds, 20, prr.ModeLB)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Generate(r)
	}
}

// BenchmarkRRSetGeneration measures classic RR-set sampling.
func BenchmarkRRSetGeneration(b *testing.B) {
	g := benchGraph(b, 0.01)
	r := rng.New(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rrset.Generate(g, int32(r.Intn(g.N())), r)
	}
}

// BenchmarkDiffusionPair measures the coupled base/boosted simulation.
func BenchmarkDiffusionPair(b *testing.B) {
	g := benchGraph(b, 0.01)
	seeds := InfluentialSeeds(g, 20)
	boost := diffusion.MaskFromSet(g.N(), RandomSeeds(g, 50, 3))
	sim := diffusion.NewSimulator(g)
	r := rng.New(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.PairOnce(seeds, boost, r)
	}
}

// BenchmarkTreeExactSpread measures the O(n) tree evaluation.
func BenchmarkTreeExactSpread(b *testing.B) {
	g, err := GenerateBidirectedTree(4095, "binary", 2, 3)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := TreeFromGraph(g, InfluentialSeeds(g, 50))
	if err != nil {
		b.Fatal(err)
	}
	e := tree.NewEvaluator(tr)
	boost := RandomSeeds(g, 100, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Sigma(boost); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTreeGreedy measures Greedy-Boost end to end.
func BenchmarkTreeGreedy(b *testing.B) {
	g, err := GenerateBidirectedTree(2047, "binary", 2, 3)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := TreeFromGraph(g, InfluentialSeeds(g, 50))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.GreedyBoost(tr, 50); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTreeDP measures DP-Boost end to end (ε=0.5).
func BenchmarkTreeDP(b *testing.B) {
	g, err := GenerateBidirectedTree(1023, "binary", 2, 3)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := TreeFromGraph(g, InfluentialSeeds(g, 30))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.DPBoost(tr, 25, tree.DPOptions{Epsilon: 0.5}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benchmarks (design-choice validation) ---

// BenchmarkAblationPruning quantifies the distance-pruning of Algorithm
// 1: small k prunes aggressively, large k explores more edges.
func BenchmarkAblationPruning(b *testing.B) {
	g := benchGraph(b, 0.01)
	seeds := InfluentialSeeds(g, 20)
	for _, k := range []int{1, 5, 100} {
		b.Run(map[int]string{1: "k=1", 5: "k=5", 100: "k=100"}[k], func(b *testing.B) {
			gen, err := prr.NewGenerator(g, seeds, k, prr.ModeFull)
			if err != nil {
				b.Fatal(err)
			}
			r := rng.New(7)
			edges := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := gen.Generate(r)
				edges += res.EdgesExamined
			}
			b.ReportMetric(float64(edges)/float64(b.N), "edges/op")
		})
	}
}

// BenchmarkAblationCompression reports the raw-vs-compressed PRR sizes
// that justify the compression phase (Tables 2-3's ratio).
func BenchmarkAblationCompression(b *testing.B) {
	g := benchGraph(b, 0.01)
	seeds := InfluentialSeeds(g, 20)
	pool, err := prr.NewPool(g, seeds, 20, prr.ModeFull, 7, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.Extend((i + 1) * 2000)
	}
	st := pool.Stats()
	b.ReportMetric(st.AvgRawEdges, "rawEdges/graph")
	b.ReportMetric(st.AvgCompEdges, "compEdges/graph")
	b.ReportMetric(st.CompressionRatio, "ratio")
}

// BenchmarkAblationLazyGreedy compares CELF (lazy) max-coverage against
// the naive re-evaluating greedy it replaces.
func BenchmarkAblationLazyGreedy(b *testing.B) {
	r := rng.New(3)
	const items, sets, k = 500, 5000, 25
	cov := maxcover.New(items)
	for s := 0; s < sets; s++ {
		size := 1 + r.Intn(6)
		set := make([]int32, 0, size)
		for j := 0; j < size; j++ {
			set = append(set, int32(r.Intn(items)))
		}
		cov.AddSet(set)
	}
	b.Run("celf", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cov.Select(k, nil, nil)
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			naiveGreedy(cov, k)
		}
	})
}

func naiveGreedy(c *maxcover.Coverage, k int) int {
	covered := make([]bool, c.NumSets())
	chosen := make([]bool, c.NumItems())
	total := 0
	for round := 0; round < k; round++ {
		best, bestGain := -1, 0
		for v := 0; v < c.NumItems(); v++ {
			if chosen[v] {
				continue
			}
			gain := 0
			for si, set := range c.Sets() {
				if covered[si] {
					continue
				}
				for _, item := range set {
					if int(item) == v {
						gain++
						break
					}
				}
			}
			if gain > bestGain {
				best, bestGain = v, gain
			}
		}
		if best < 0 || bestGain == 0 {
			break
		}
		chosen[best] = true
		total += bestGain
		for si, set := range c.Sets() {
			if covered[si] {
				continue
			}
			for _, item := range set {
				if int(item) == best {
					covered[si] = true
					break
				}
			}
		}
	}
	return total
}

// BenchmarkAblationWorkers measures parallel scaling of PRR pool
// generation.
func BenchmarkAblationWorkers(b *testing.B) {
	g := benchGraph(b, 0.01)
	seeds := InfluentialSeeds(g, 20)
	for _, w := range []int{1, 2} {
		name := map[int]string{1: "workers=1", 2: "workers=2"}[w]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pool, err := prr.NewPool(g, seeds, 20, prr.ModeFull, 7, w)
				if err != nil {
					b.Fatal(err)
				}
				pool.Extend(5000)
			}
		})
	}
}

// BenchmarkAblationSampler compares the IMM sampling controller with
// the SSA-style adaptive controller on the same boosting instance,
// reporting the number of sketches each one decides to generate.
func BenchmarkAblationSampler(b *testing.B) {
	g := benchGraph(b, 0.004)
	seeds := InfluentialSeeds(g, 10)
	for _, adaptive := range []bool{false, true} {
		name := "imm"
		if adaptive {
			name = "adaptive"
		}
		b.Run(name, func(b *testing.B) {
			samples := 0
			for i := 0; i < b.N; i++ {
				res, err := PRRBoost(g, seeds, BoostOptions{
					K: 10, Seed: uint64(i) + 1, Adaptive: adaptive, MaxSamples: 200000,
				})
				if err != nil {
					b.Fatal(err)
				}
				samples += res.Samples
			}
			b.ReportMetric(float64(samples)/float64(b.N), "sketches/op")
		})
	}
}

// BenchmarkEngineWarmBoost measures a fully warm Engine boost query:
// cached pool, sized memo hit, and — for the repeated k — a result-cache
// hit that skips selection entirely. This is the steady-state latency a
// kboostd client sees for repeated what-if queries.
func BenchmarkEngineWarmBoost(b *testing.B) {
	g := benchGraph(b, 0.01)
	eng := NewEngine(EngineOptions{})
	if err := eng.RegisterGraph("bench", g); err != nil {
		b.Fatal(err)
	}
	req := EngineBoostRequest{
		GraphID: "bench", Seeds: InfluentialSeeds(g, 20), K: 20,
		Seed: 7, MaxSamples: 20000,
	}
	if _, err := eng.Boost(req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.Boost(req)
		if err != nil {
			b.Fatal(err)
		}
		if !res.CacheHit || res.NewSamples != 0 {
			b.Fatal("warm query was not served from the cache")
		}
	}
}

// BenchmarkLTWarmBoost compares a cold mode:"lt" boost query — profile
// sampling plus the pooled greedy — against the warm repeat served from
// the cached pool and result cache. The warm/cold ratio is the speedup
// the LT serving path exists for (the acceptance bar is ≥ 3×; in
// practice the warm path is orders of magnitude faster).
func BenchmarkLTWarmBoost(b *testing.B) {
	g := benchGraph(b, 0.01)
	seeds := InfluentialSeeds(g, 20)
	sims := 10000
	if testing.Short() {
		sims = 1000
	}
	req := EngineBoostRequest{
		GraphID: "bench", Seeds: seeds, K: 20,
		Mode: "lt", Seed: 7, Sims: sims,
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := NewEngine(EngineOptions{})
			if err := eng.RegisterGraph("bench", g); err != nil {
				b.Fatal(err)
			}
			res, err := eng.Boost(req)
			if err != nil {
				b.Fatal(err)
			}
			if res.CacheHit || res.NewSamples != sims {
				b.Fatal("cold query did not sample a fresh pool")
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		eng := NewEngine(EngineOptions{})
		if err := eng.RegisterGraph("bench", g); err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Boost(req); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := eng.Boost(req)
			if err != nil {
				b.Fatal(err)
			}
			if !res.CacheHit || res.NewSamples != 0 {
				b.Fatal("warm query was not served from the cache")
			}
		}
	})
	// warm-selection isolates the pooled greedy itself: pool hit but
	// result-cache miss, the cost a warm query with a fresh k pays. The
	// incremental-vs-naive selection comparison lives next to the
	// implementation in internal/lt's BenchmarkLTSelectWarm.
	b.Run("warm-selection", func(b *testing.B) {
		pool, err := NewLTPool(g, seeds, 7, 0)
		if err != nil {
			b.Fatal(err)
		}
		pool.Extend(sims)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := pool.GreedyBoost(20, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLTWarmBoostShort is the gated counterpart of
// BenchmarkLTWarmBoost. The full-size cold sub-benchmark completes 1–9
// iterations per run — too few for the regression gate to tell signal
// from scheduler noise — so the gate re-runs this fixed small variant
// instead (≥ 20 iterations per sub at the default benchtime). Sizes are
// deliberately not testing.Short()-gated: the gate compares against a
// committed baseline, so dimensions must match on every machine.
func BenchmarkLTWarmBoostShort(b *testing.B) {
	g := benchGraph(b, 0.002)
	seeds := InfluentialSeeds(g, 10)
	const sims = 600
	req := EngineBoostRequest{
		GraphID: "bench", Seeds: seeds, K: 10,
		Mode: "lt", Seed: 7, Sims: sims,
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := NewEngine(EngineOptions{})
			if err := eng.RegisterGraph("bench", g); err != nil {
				b.Fatal(err)
			}
			res, err := eng.Boost(req)
			if err != nil {
				b.Fatal(err)
			}
			if res.CacheHit || res.NewSamples != sims {
				b.Fatal("cold query did not sample a fresh pool")
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		eng := NewEngine(EngineOptions{})
		if err := eng.RegisterGraph("bench", g); err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Boost(req); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := eng.Boost(req)
			if err != nil {
				b.Fatal(err)
			}
			if !res.CacheHit || res.NewSamples != 0 {
				b.Fatal("warm query was not served from the cache")
			}
		}
	})
}

// BenchmarkLTPoolExtend measures LT profile-pool growth: one-shot
// generation versus the same total arriving in ten batches (the
// Engine's warm-extension pattern), which exercises the frontier-index
// merge repeatedly.
func BenchmarkLTPoolExtend(b *testing.B) {
	g := benchGraph(b, 0.01)
	seeds := InfluentialSeeds(g, 20)
	total := 10000
	if testing.Short() {
		total = 2000
	}
	run := func(b *testing.B, steps int) {
		for i := 0; i < b.N; i++ {
			pool, err := NewLTPool(g, seeds, 7, 0)
			if err != nil {
				b.Fatal(err)
			}
			for s := 1; s <= steps; s++ {
				pool.Extend(total * s / steps)
			}
		}
	}
	b.Run("oneshot", func(b *testing.B) { run(b, 1) })
	b.Run("staged10", func(b *testing.B) { run(b, 10) })
}

// BenchmarkGeneratorScaleFree measures synthetic topology generation.
func BenchmarkGeneratorScaleFree(b *testing.B) {
	r := rng.New(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.ScaleFree(5000, 5, 0.3, r); err != nil {
			b.Fatal(err)
		}
	}
}
