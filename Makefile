GO ?= go

# Recipes pipe `go test -bench` output through benchjson; pipefail makes
# a benchmark failure fail the target instead of emitting partial JSON.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

.PHONY: all build test race lint bench bench-short bench-gate fuzz-short chaos-short

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# maxcover (CoverageOf/MemoryBytes run concurrently with each other) and
# graph (shared immutable CSR read from every worker) joined the race
# matrix alongside the original four concurrent hot paths; the pluggable
# model pools (sir, kthresh) shard their sampling across workers the
# same way lt does.
race:
	$(GO) test -race ./internal/prr ./internal/diffusion ./internal/engine ./internal/lt ./internal/maxcover ./internal/graph ./internal/model/sir ./internal/model/kthresh

# lint runs the project's own invariant analyzers (cmd/kboostvet: see
# internal/analysis) plus staticcheck and govulncheck when they are on
# PATH. CI installs pinned versions; locally the extra tools are
# optional so the target works on a bare toolchain.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/kboostvet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
	  staticcheck ./... ; \
	else \
	  echo "lint: staticcheck not installed, skipping (CI runs it pinned)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
	  govulncheck ./... ; \
	else \
	  echo "lint: govulncheck not installed, skipping (CI runs it pinned)"; \
	fi

# chaos-short runs the fault-injection property suite under the race
# detector: injected latency/errors/panics at the pool-build shard
# boundary must never poison the pool cache, retries must be
# bit-identical to uninterrupted runs, and the HTTP layer must shed,
# degrade, and drain correctly under pressure (internal/faults,
# chaos_test.go, server_robustness_test.go).
chaos-short:
	$(GO) test -race -run 'TestChaos|TestHealthAndReady|TestColdOverflow|TestEstimateDegrades|TestEstimateSheds|TestShardPanic|TestClientDisconnect' -v ./internal/engine

# fuzz-short smoke-fuzzes the graph codecs (the untrusted-input surface
# of the upload and PATCH endpoints); go only accepts one fuzz target
# per run.
FUZZTIME ?= 20s
fuzz-short:
	$(GO) test -run '^$$' -fuzz '^FuzzReadEdgeList$$' -fuzztime $(FUZZTIME) ./internal/graph
	$(GO) test -run '^$$' -fuzz '^FuzzReadBinary$$' -fuzztime $(FUZZTIME) ./internal/graph
	$(GO) test -run '^$$' -fuzz '^FuzzReadEdgeDelta$$' -fuzztime $(FUZZTIME) ./internal/graph

# bench runs the selection- and cold-path benchmarks (warm SelectDelta
# vs the naive reference, incremental Extend, cold pool builds, Eval
# sweeps, warm Engine queries, graph-patch repair vs cold rebuild — for
# both the PRR and boosted-LT pool families — plus the tiered estimate
# serves: closed-form tier 0, small-sample tier 1, and the warm tier-2
# baseline they undercut) with -benchmem, and emits
# machine-readable BENCH_select.json (ns/op, bytes_per_op,
# allocs_per_op) alongside the usual text output. -count=3 matches the
# gate's re-runs; the comparator takes each name's *median* baseline
# run, so one lucky run here cannot tighten the gate for every later
# commit.
bench:
	{ $(GO) test -run '^$$' -bench 'BenchmarkSelectDeltaWarm|BenchmarkExtendIncremental|BenchmarkPoolBuildCold|BenchmarkPRREval' -benchmem -count=3 ./internal/prr && \
	  $(GO) test -run '^$$' -bench 'BenchmarkLTSelectWarm|BenchmarkLTEstimateWarm' -benchmem -count=3 ./internal/lt && \
	  $(GO) test -run '^$$' -bench 'BenchmarkSIRSelectWarm|BenchmarkSIREstimateWarm' -benchmem -count=3 ./internal/model/sir && \
	  $(GO) test -run '^$$' -bench 'BenchmarkKThreshSelectWarm|BenchmarkKThreshEstimateWarm' -benchmem -count=3 ./internal/model/kthresh && \
	  $(GO) test -run '^$$' -bench 'BenchmarkEstimateTier' -benchmem -count=3 ./internal/engine && \
	  $(GO) test -run '^$$' -bench 'BenchmarkEngineWarmBoost|BenchmarkLTWarmBoost|BenchmarkLTPoolExtend|BenchmarkGraphPatch' -benchmem -count=3 . ; } | tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_select.json
	@echo "wrote BENCH_select.json"

# bench-short is the CI smoke variant: tiny graphs, one iteration each,
# just proving the benchmarks still build and run.
bench-short:
	$(GO) test -run '^$$' -bench 'BenchmarkSelectDeltaWarm|BenchmarkExtendIncremental|BenchmarkPoolBuildCold|BenchmarkPRREval' -benchmem -benchtime 1x -short -count=1 ./internal/prr
	$(GO) test -run '^$$' -bench 'BenchmarkLTSelectWarm|BenchmarkLTEstimateWarm' -benchmem -benchtime 1x -short -count=1 ./internal/lt
	$(GO) test -run '^$$' -bench 'BenchmarkSIRSelectWarm|BenchmarkSIREstimateWarm' -benchmem -benchtime 1x -short -count=1 ./internal/model/sir
	$(GO) test -run '^$$' -bench 'BenchmarkKThreshSelectWarm|BenchmarkKThreshEstimateWarm' -benchmem -benchtime 1x -short -count=1 ./internal/model/kthresh
	$(GO) test -run '^$$' -bench 'BenchmarkEstimateTier' -benchmem -benchtime 1x -short -count=1 ./internal/engine
	$(GO) test -run '^$$' -bench 'BenchmarkEngineWarmBoost|BenchmarkLTWarmBoost|BenchmarkLTPoolExtend|BenchmarkGraphPatch' -benchmem -benchtime 1x -short -count=1 .

# bench-gate re-runs the cheap warm-path benchmarks at full size, emits
# BENCH_fresh.json, and fails on a >25% ns/op or allocs_per_op
# regression against the committed BENCH_select.json baseline. Gated
# set: the warm selection/estimate paths (the *Short variants exist so
# every gated benchmark completes >= 20 iterations — the full-size
# naive references run 1-9 iterations, too noisy to gate) plus the
# graph-patch repair path and the tiered estimate serves (tier 0 must
# stay closed-form cheap; the warm tier-2 baseline guards the pool
# read path). Cold ns/op varies too much across runners to
# gate on, so BenchmarkGraphPatchRebuild and the full-size warm benches
# stay informational; alloc counts are exact, so the alloc gate catches
# an accidental per-call allocation on the warm path even when the
# runner is noisy. Re-runs use -count=3 and the comparator compares
# the fastest fresh run against the median baseline run, so neither a
# scheduler hiccup here nor a lucky baseline can fail the gate — the
# sub-microsecond cache-hit benchmarks need that headroom. The
# comparator lives in cmd/benchjson.
bench-gate:
	{ $(GO) test -run '^$$' -bench 'BenchmarkSelectDeltaWarm' -benchmem -count=3 ./internal/prr && \
	  $(GO) test -run '^$$' -bench 'BenchmarkLTSelectWarmShort|BenchmarkLTEstimateWarmShort' -benchmem -count=3 ./internal/lt && \
	  $(GO) test -run '^$$' -bench 'BenchmarkSIRSelectWarm|BenchmarkSIREstimateWarm' -benchmem -count=3 ./internal/model/sir && \
	  $(GO) test -run '^$$' -bench 'BenchmarkKThreshSelectWarm|BenchmarkKThreshEstimateWarm' -benchmem -count=3 ./internal/model/kthresh && \
	  $(GO) test -run '^$$' -bench 'BenchmarkEstimateTier' -benchmem -count=3 ./internal/engine && \
	  $(GO) test -run '^$$' -bench 'BenchmarkEngineWarmBoost|BenchmarkLTWarmBoostShort|BenchmarkGraphPatchRepair' -benchmem -count=3 . ; } | tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_fresh.json
	$(GO) run ./cmd/benchjson -baseline BENCH_select.json -current BENCH_fresh.json -filter 'Warm|PatchRepair|EstimateTier' -max-regress 0.25 -max-alloc-regress 0.25
