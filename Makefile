GO ?= go

# Recipes pipe `go test -bench` output through benchjson; pipefail makes
# a benchmark failure fail the target instead of emitting partial JSON.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

.PHONY: all build test race bench bench-short fuzz-short

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/prr ./internal/diffusion ./internal/engine ./internal/lt

# fuzz-short smoke-fuzzes the graph codecs (the untrusted-input surface
# of the upload endpoint); go only accepts one fuzz target per run.
FUZZTIME ?= 20s
fuzz-short:
	$(GO) test -run '^$$' -fuzz '^FuzzReadEdgeList$$' -fuzztime $(FUZZTIME) ./internal/graph
	$(GO) test -run '^$$' -fuzz '^FuzzReadBinary$$' -fuzztime $(FUZZTIME) ./internal/graph

# bench runs the selection-path benchmarks (warm SelectDelta vs the
# naive reference, incremental Extend, warm Engine queries — for both
# the PRR and boosted-LT pool families) and emits machine-readable
# BENCH_select.json alongside the usual text output.
bench:
	{ $(GO) test -run '^$$' -bench 'BenchmarkSelectDeltaWarm|BenchmarkExtendIncremental' -count=1 ./internal/prr && \
	  $(GO) test -run '^$$' -bench 'BenchmarkLTSelectWarm|BenchmarkLTEstimateWarm' -count=1 ./internal/lt && \
	  $(GO) test -run '^$$' -bench 'BenchmarkEngineWarmBoost|BenchmarkLTWarmBoost|BenchmarkLTPoolExtend' -count=1 . ; } | tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_select.json
	@echo "wrote BENCH_select.json"

# bench-short is the CI smoke variant: tiny graphs, one iteration each,
# just proving the benchmarks still build and run.
bench-short:
	$(GO) test -run '^$$' -bench 'BenchmarkSelectDeltaWarm|BenchmarkExtendIncremental' -benchtime 1x -short -count=1 ./internal/prr
	$(GO) test -run '^$$' -bench 'BenchmarkLTSelectWarm|BenchmarkLTEstimateWarm' -benchtime 1x -short -count=1 ./internal/lt
	$(GO) test -run '^$$' -bench 'BenchmarkEngineWarmBoost|BenchmarkLTWarmBoost|BenchmarkLTPoolExtend' -benchtime 1x -short -count=1 .
